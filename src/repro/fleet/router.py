"""Fleet router: placement, scatter/gather, aggregation, healing, drain.

The router owns the worker pool and is the only process that talks to
every shard.  It keeps **no traversal state** — trees, plans, clocks,
and metrics all live in the workers — so its job reduces to five
verbs:

* **place** — sessions map to workers by consistent hash
  (:class:`~repro.fleet.hashring.HashRing`).  Registrations broadcast
  to every worker (shared-nothing peers each build their own tree), so
  placement is a routing *preference*, not a correctness constraint:
  when a worker dies, the ring rehashes its sessions onto live workers
  that already hold the trees.
* **scatter/gather** — a single-session batch at or above
  ``scatter_threshold`` rows splits into balanced contiguous slices
  (:mod:`repro.fleet.slicing`), one per live worker, executed in
  parallel and gathered back into submission order.  Results are
  bit-identical to unsliced execution because per-query answers never
  depend on batch composition.  Rows stranded on a shard that dies
  mid-scatter get one automatic retry against the survivors, so a
  mid-scatter death degrades to slower-but-correct, not typed-error
  rows.
* **aggregate** — ``/metrics`` merges the workers' registry exports
  with a ``worker`` label per series plus the router's own ``fleet_*``
  instruments; ``/healthz`` is degraded if any worker is degraded or
  dead; ``/statsz`` is a strict-JSON fleet snapshot (summed counters,
  ``None`` — never ``NaN`` — for aggregates with no samples) including
  per-session registration coverage from the ledger.
* **heal** — worker death trips a router-side breaker
  (closed → open); the supervisor (:mod:`repro.fleet.supervisor`)
  decides when the shard may be respawned under a seeded restart
  policy.  A respawn boots a fresh process, moves the breaker to
  **half-open**, replays the session catalog from the router-held
  :class:`~repro.fleet.ledger.SessionLedger` (digest-verified), sends
  a probe, and only then closes the breaker and re-joins the ring.
  ``/healthz`` recovers to healthy after the rejoin.
* **drain** — SIGTERM fans out ``drain`` frames; every worker flushes
  (drain-or-fail), reports its pending depth, and exits 0.  The fleet
  exit code is 0 only when every *current* worker drained clean — a
  death that was healed by a restart does not taint the exit, an
  unhealed or evicted one does.

Fleet-level chaos (:mod:`repro.fleet.chaos`) can kill workers, drop
replies, and stall pipes on a schedule that is deterministic per
``(seed, worker, logical clock)``; recovery is observable through
``fleet_restarts_total``, ``fleet_replay_sessions_total``, the
``fleet_recovery_ms`` histogram, and recovery spans kept in a
router-side flight recorder.
"""

from __future__ import annotations

import json
import signal
import threading
import time
from dataclasses import dataclass, field
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, List, Optional, Tuple
from urllib.parse import parse_qs, urlsplit

import numpy as np

from repro.fleet import wire
from repro.fleet.chaos import FleetChaos, FleetChaosConfig
from repro.fleet.hashring import DEFAULT_REPLICAS, HashRing
from repro.fleet.ledger import STATE_MISSING, STATE_OK, SessionLedger
from repro.fleet.pool import mp_context, start_process
from repro.fleet.slicing import scatter_slices
from repro.fleet.supervisor import (
    DECIDE_EVICT,
    DECIDE_RESTART,
    FleetSupervisor,
    RestartPolicy,
)
from repro.fleet.logs import FleetLogAssembler
from repro.fleet.tracing import FleetTraceAssembler, ROUTER_WORKER
from repro.fleet.worker import worker_main
from repro.service.serve import JSON_CONTENT_TYPE, METRICS_CONTENT_TYPE
from repro.telemetry import (
    EventLog,
    FlightRecorder,
    LEVELS,
    MetricsRegistry,
    TraceContext,
    Tracer,
    derive_trace_id,
    expose_export_text,
    merge_labeled_exports,
    sum_exports,
)

#: buckets for the time-to-recovery histogram (logical ms).
RECOVERY_MS_BUCKETS = (1.0, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0, 1000.0, 5000.0)


@dataclass(frozen=True)
class FleetConfig:
    """Knobs for one fleet (router + N workers)."""

    #: worker process count.
    workers: int = 4
    #: hash-ring virtual nodes per worker.
    replicas: int = DEFAULT_REPLICAS
    #: single-session batches with at least this many rows scatter
    #: across all live workers; smaller ones route whole to the
    #: session's placed shard.  0 disables scattering entirely.
    scatter_threshold: int = 64
    #: the single fleet seed every worker seed derives from.
    seed: int = 7
    #: pin workers to CPUs round-robin (best-effort, Linux only).
    pin_cpus: bool = True
    #: multiprocessing start method (None = fork where available).
    start_method: Optional[str] = None
    #: reply deadline for one worker exchange, seconds (None = wait).
    call_timeout_s: Optional[float] = 120.0
    #: plain-dict ServiceConfig payload forwarded to every worker (see
    #: repro.fleet.worker.build_worker_service).
    service: Dict[str, Any] = field(default_factory=dict)
    #: restart dead workers (replay sessions, rejoin the ring); off
    #: restores the PR-6 terminal-breaker behavior.
    supervise: bool = True
    #: restart backoff / budget policy (logical clock).
    restart: RestartPolicy = field(default_factory=RestartPolicy)
    #: scatter rows stranded by a mid-scatter death get one retry
    #: against the surviving workers.
    scatter_retry: bool = True
    #: fleet-level fault injection (worker kill / reply drop / stall).
    fleet_chaos: Optional[FleetChaosConfig] = None
    #: distributed tracing: stamp a TraceContext on every submit frame,
    #: assemble the workers' span streams in the router, expose the
    #: merged timeline at /tracez.  Off ⇒ frames are byte-identical to
    #: the pre-tracing protocol and the router allocates no assembler.
    trace: bool = True
    #: fleet trace assembler ring capacity (merged finished spans).
    trace_capacity: int = 50_000
    #: structured logging: assemble the workers' event-log streams in
    #: the router, expose the merged stream at /logz.  Off ⇒ frames
    #: carry no ``logs`` keys and the router allocates no assembler.
    log: bool = True
    #: fleet log assembler ring capacity (merged log records).
    log_capacity: int = 50_000


#: router-side breaker states.
BREAKER_CLOSED = "closed"
BREAKER_OPEN = "open"
BREAKER_HALF_OPEN = "half_open"


@dataclass
class WorkerBreaker:
    """Router-side breaker for one shard — full lifecycle.

    ``closed`` — the shard takes traffic.  ``open`` — the process is
    dead (or its pipe is unusable); routing rehashes away until the
    supervisor respawns it.  ``half_open`` — a replacement process is
    up and being re-armed: the session catalog replays into it and a
    probe request must succeed before :meth:`close` re-joins it to the
    ring.  A probe or replay failure re-opens the breaker (and counts
    against the restart budget).
    """

    worker: str
    state: str = BREAKER_CLOSED
    reason: str = ""
    trips: int = 0
    recoveries: int = 0

    def trip(self, reason: str) -> None:
        self.state = BREAKER_OPEN
        self.reason = reason
        self.trips += 1

    def half_open(self, reason: str = "restarting") -> None:
        self.state = BREAKER_HALF_OPEN
        self.reason = reason

    def close(self) -> None:
        self.state = BREAKER_CLOSED
        self.reason = ""
        self.recoveries += 1

    @property
    def closed(self) -> bool:
        return self.state == BREAKER_CLOSED


class WorkerHandle:
    """One shard as the router sees it: process, pipe, lock, breaker.

    The handle object is stable across restarts — a respawn swaps
    ``proc`` and ``conn`` in place (under :attr:`lock`) and bumps
    :attr:`incarnation`, so every thread holding the handles dict sees
    the replacement the moment the breaker closes.
    """

    def __init__(self, worker_id: str, index: int, proc, conn) -> None:
        self.id = worker_id
        self.index = index
        self.proc = proc
        self.conn = conn
        #: held across one full send->recv exchange so concurrent HTTP
        #: scrapes and scatter submits never interleave frames; also
        #: held across a respawn's proc/conn swap.
        self.lock = threading.Lock()
        self.breaker = WorkerBreaker(worker_id)
        #: process generation: 0 for the boot process, +1 per respawn.
        self.incarnation = 0

    @property
    def alive(self) -> bool:
        return self.breaker.closed


class FleetRouter:
    """Owns the workers; see module docstring for the contract."""

    def __init__(self, config: Optional[FleetConfig] = None) -> None:
        self.config = config or FleetConfig()
        if self.config.workers < 1:
            raise ValueError("a fleet needs at least one worker")
        self.handles: Dict[str, WorkerHandle] = {}
        self.ring = HashRing(replicas=self.config.replicas)
        self.ledger = SessionLedger()
        self.supervisor = FleetSupervisor(self.config.restart)
        self.chaos = (
            FleetChaos(self.config.fleet_chaos)
            if self.config.fleet_chaos is not None
            else None
        )
        #: fleet logical clock: high-water mark of every ``now`` seen in
        #: submits and worker replies.  Supervision backoff and chaos
        #: schedules run on this clock, so a driven run is deterministic.
        self.now_ms = 0.0
        self.registry = MetricsRegistry()
        #: recovery observability: spans per recovery, ring per worker.
        #: trace_seed=fleet seed so router span identity is derived the
        #: same way worker identity is — pure function of the one seed.
        self.tracer = Tracer(max_spans=10_000, trace_seed=self.config.seed)
        self.flight = FlightRecorder(capacity=32)
        #: fleet-wide trace assembly (None when tracing is off: the
        #: query path then carries no trace payloads at all).
        self.trace = (
            FleetTraceAssembler(capacity=self.config.trace_capacity)
            if self.config.trace
            else None
        )
        #: fleet-wide log assembly + the router's own structured log
        #: (None when logging is off: frames carry no ``logs`` keys and
        #: the router pays nothing on the query path).
        self.logs = (
            FleetLogAssembler(capacity=self.config.log_capacity)
            if self.config.log
            else None
        )
        self.log = (
            EventLog(capacity=self.config.log_capacity, tracer=self.tracer)
            if self.config.log
            else None
        )
        #: optional OTLP egress (attach_otlp); never blocks the router.
        self.otlp = None
        self._ticket_lock = threading.Lock()
        self._next_ticket = 0
        self._trace_synced: Dict[str, int] = {}
        self._m = {
            "workers": self.registry.gauge(
                "fleet_workers", "worker count by state", labels=("state",)
            ),
            "deaths": self.registry.counter(
                "fleet_worker_deaths_total",
                "worker breaker trips (process death or wire failure)",
                labels=("worker",),
            ),
            "restarts": self.registry.counter(
                "fleet_restarts_total",
                "worker processes respawned, replayed, and re-joined",
                labels=("worker",),
            ),
            "restart_failures": self.registry.counter(
                "fleet_restart_failures_total",
                "respawn attempts that failed boot, replay, or probe",
                labels=("worker",),
            ),
            "replays": self.registry.counter(
                "fleet_replay_sessions_total",
                "sessions replayed into respawned workers from the ledger",
                labels=("worker",),
            ),
            "evictions": self.registry.counter(
                "fleet_evictions_total",
                "workers permanently evicted (restart budget exhausted)",
                labels=("worker",),
            ),
            "recovery_ms": self.registry.histogram(
                "fleet_recovery_ms",
                "logical time from breaker trip to ring re-join",
                buckets=RECOVERY_MS_BUCKETS,
            ),
            "routed": self.registry.counter(
                "fleet_routed_batches_total",
                "whole batches routed to a placed shard",
                labels=("worker",),
            ),
            "reroutes": self.registry.counter(
                "fleet_reroutes_total",
                "routed batches retried on a survivor after a shard died",
                labels=("worker",),
            ),
            "scattered": self.registry.counter(
                "fleet_scatter_batches_total",
                "batches scatter-sliced across the live workers",
            ),
            "scatter_rows": self.registry.counter(
                "fleet_scatter_rows_total",
                "query rows shipped inside scatter slices",
                labels=("worker",),
            ),
            "scatter_retries": self.registry.counter(
                "fleet_scatter_retries_total",
                "one-shot retries of shard-lost scatter rows",
            ),
            "scatter_retry_rows": self.registry.counter(
                "fleet_scatter_retry_rows_total",
                "shard-lost rows recovered by the scatter retry",
                labels=("worker",),
            ),
            "chaos": self.registry.counter(
                "fleet_chaos_injections_total",
                "fleet-level chaos faults injected",
                labels=("kind", "worker"),
            ),
        }
        self._started = False
        self._drained: Dict[str, dict] = {}
        self._t0 = time.monotonic()
        #: serializes ring membership + gauge updates across threads.
        self._state_lock = threading.Lock()
        #: heal() is not reentrant; concurrent callers skip.
        self._heal_lock = threading.Lock()
        self._evictions_recorded: set = set()

    # -- clock -----------------------------------------------------------

    def observe_now(self, now: Optional[float]) -> float:
        """Advance the fleet clock's high-water mark; returns it."""
        if now is not None and now > self.now_ms:
            self.now_ms = float(now)
        return self.now_ms

    def wall_now_ms(self) -> float:
        """Serve-mode clock: logical high-water mark, floored by wall
        milliseconds since boot so an idle fleet's backoff still
        elapses.  Deterministic paths pass explicit ``now`` instead."""
        return max(self.now_ms, (time.monotonic() - self._t0) * 1000.0)

    # -- lifecycle -------------------------------------------------------

    def _spawn(self, worker_id: str, index: int, incarnation: int = 0):
        """Start one worker process + pipe (boot frame not yet read)."""
        ctx = mp_context(self.config.start_method)
        parent, child = ctx.Pipe()
        name = f"fleet-{worker_id}"
        if incarnation:
            name = f"{name}r{incarnation}"
        # worker_main's signature leads with cpu_index; None means
        # the child skips pinning (pin_to_cpu handles it).
        proc = start_process(
            worker_main,
            args=(index if self.config.pin_cpus else None, child, worker_id,
                  index, self.config.seed, dict(self.config.service)),
            name=name,
            method=self.config.start_method,
        )
        child.close()
        return proc, parent

    def start(self) -> List[str]:
        """Spawn and boot every worker; returns their ids."""
        if self._started:
            raise RuntimeError("fleet already started")
        self._started = True
        for i in range(self.config.workers):
            worker_id = f"w{i}"
            proc, parent = self._spawn(worker_id, i)
            handle = WorkerHandle(worker_id, i, proc, parent)
            self.handles[worker_id] = handle
            self.ring.add(worker_id)
        # Boot barrier: every worker answers its boot frame before the
        # fleet accepts traffic, so a worker that fails to construct
        # its service is a loud start() error, not a late mystery.
        for handle in self.handles.values():
            try:
                wire.recv_reply(
                    handle.conn, handle.id, timeout=self.config.call_timeout_s
                )
            except (wire.WorkerGone, wire.WireError) as exc:
                self._trip(handle, f"boot failed: {exc}")
        self._update_worker_gauges()
        if not self.live_workers():
            raise RuntimeError("no worker survived boot")
        return sorted(self.handles)

    def shutdown(self, timeout_s: float = 30.0) -> Dict[str, Any]:
        """Fleet-wide graceful drain; see :meth:`drain`."""
        return self.drain(timeout_s=timeout_s)

    def __enter__(self) -> "FleetRouter":
        self.start()
        return self

    def __exit__(self, *exc) -> None:
        if not self._drained:
            self.drain()

    # -- shard bookkeeping -----------------------------------------------

    def live_workers(self) -> List[str]:
        return sorted(w for w, h in self.handles.items() if h.alive)

    def dead_workers(self) -> List[str]:
        return sorted(w for w, h in self.handles.items() if not h.alive)

    @property
    def sessions(self) -> List[str]:
        """Registered session names (ledger-backed, registration order)."""
        return self.ledger.names()

    def _trip(self, handle: WorkerHandle, reason: str,
              now: Optional[float] = None) -> None:
        if not handle.alive:
            return
        handle.breaker.trip(reason)
        with self._state_lock:
            self.ring.remove(handle.id)
        self.ledger.mark_worker_lost(handle.id)
        self.supervisor.note_death(
            handle.id, self.observe_now(now), reason
        )
        self._m["deaths"].inc(worker=handle.id)
        self._rlog(
            "error", "fleet.worker_death", self.now_ms,
            worker=handle.id, reason=reason,
        )
        self._update_worker_gauges()

    def _update_worker_gauges(self) -> None:
        states = {"alive": 0, "dead": 0, "recovering": 0, "evicted": 0}
        for worker, handle in self.handles.items():
            if handle.breaker.state == BREAKER_CLOSED:
                states["alive"] += 1
            elif handle.breaker.state == BREAKER_HALF_OPEN:
                states["recovering"] += 1
            elif self.supervisor.is_evicted(worker):
                states["evicted"] += 1
            else:
                states["dead"] += 1
        for state, count in states.items():
            self._m["workers"].set(count, state=state)

    # -- chaos hooks -----------------------------------------------------

    def _chaos_kill_tick(self, now: Optional[float]) -> None:
        """Fire scheduled worker kills for this logical instant."""
        if self.chaos is None or now is None:
            return
        for worker in self.live_workers():  # sorted: deterministic order
            if self.chaos.should_kill(worker, now):
                self._m["chaos"].inc(kind="kill", worker=worker)
                self._rlog(
                    "warn", "fleet.chaos", float(now),
                    kind="kill", worker=worker,
                )
                try:
                    self.handles[worker].proc.kill()
                except (OSError, ValueError):
                    pass  # already gone; the wire path will notice

    def _recv_submit_reply(
        self, handle: WorkerHandle, now: Optional[float]
    ) -> Dict[str, Any]:
        """recv for the query path, with reply-drop / stall chaos."""
        if self.chaos is not None and now is not None:
            if self.chaos.should_stall(handle.id, now):
                # Abandon the exchange without consuming the reply: the
                # pipe is now desynchronized, which is exactly why a
                # tripped shard must be *replaced*, never resumed.
                self._m["chaos"].inc(kind="stall", worker=handle.id)
                raise wire.WorkerGone(
                    handle.id, "chaos: pipe stalled past deadline"
                )
            if self.chaos.should_drop_reply(handle.id, now):
                self._m["chaos"].inc(kind="drop_reply", worker=handle.id)
                try:
                    wire.recv_reply(  # consume, then discard
                        handle.conn, handle.id,
                        timeout=self.config.call_timeout_s,
                    )
                except (wire.WorkerGone, wire.WireError):
                    pass
                raise wire.WorkerGone(handle.id, "chaos: reply dropped")
        return wire.recv_reply(
            handle.conn, handle.id, timeout=self.config.call_timeout_s
        )

    # -- wire plumbing ---------------------------------------------------

    def _call(self, worker: str, cmd: str, **payload: Any) -> Dict[str, Any]:
        """One locked exchange with one worker; death trips the breaker."""
        handle = self.handles[worker]
        if not handle.alive:
            raise wire.WorkerGone(worker, handle.breaker.reason)
        with handle.lock:
            try:
                return wire.call(
                    handle.conn, worker, cmd,
                    timeout=self.config.call_timeout_s, **payload,
                )
            except wire.WorkerGone as exc:
                self._trip(handle, str(exc))
                raise

    def broadcast(
        self, cmd: str, workers: Optional[List[str]] = None, **payload: Any
    ) -> Tuple[Dict[str, Dict[str, Any]], Dict[str, str]]:
        """Send one command to many workers in parallel (send phase,
        then receive phase, per-handle locks held across both).

        Returns ``(replies, failures)`` keyed by worker id; a failure
        trips that worker's breaker but never poisons its siblings.
        """
        targets = [
            self.handles[w] for w in (workers or self.live_workers())
            if self.handles[w].alive
        ]
        targets.sort(key=lambda h: h.id)  # stable lock order
        replies: Dict[str, Dict[str, Any]] = {}
        failures: Dict[str, str] = {}
        acquired: List[WorkerHandle] = []
        try:
            for handle in targets:
                handle.lock.acquire()
                acquired.append(handle)
                try:
                    wire.send_request(handle.conn, handle.id, cmd, **payload)
                except wire.WorkerGone as exc:
                    self._trip(handle, str(exc))
                    failures[handle.id] = str(exc)
            for handle in targets:
                if handle.id in failures:
                    continue
                try:
                    replies[handle.id] = wire.recv_reply(
                        handle.conn, handle.id,
                        timeout=self.config.call_timeout_s,
                    )
                except wire.WorkerGone as exc:
                    self._trip(handle, str(exc))
                    failures[handle.id] = str(exc)
                except wire.WireError as exc:
                    failures[handle.id] = str(exc)
        finally:
            for handle in acquired:
                handle.lock.release()
        return replies, failures

    # -- sessions --------------------------------------------------------

    def register(self, name: str, app: str, data: np.ndarray,
                 **build_kwargs: Any) -> Dict[str, Any]:
        """Broadcast a session build to every live worker.

        Shared-nothing: each worker builds its own tree + plan.  The
        build is recorded in the :class:`SessionLedger` *per worker* —
        ``ok`` where it landed, ``failed: ...`` where the worker
        rejected it, ``missing`` where the worker was dead — so partial
        fleet coverage is visible in ``/statsz`` (and healable: a
        restart replays the catalog into the replacement).  The
        registration fails loudly if *no* worker accepted it.
        """
        data = np.ascontiguousarray(data, dtype=np.float64)
        record = self.ledger.begin(
            name, app, data, build_kwargs, now_ms=self.now_ms
        )
        replies, failures = self.broadcast(
            "register", name=name, app=app, data=record.data,
            build_kwargs=build_kwargs,
        )
        if not replies:
            self.ledger.forget(name)
            raise RuntimeError(
                f"session {name!r}: no live worker accepted the "
                f"registration ({failures})"
            )
        for worker in self.handles:
            if worker in replies:
                self.ledger.mark(name, worker, STATE_OK)
            elif worker in failures:
                self.ledger.mark(name, worker, f"failed: {failures[worker]}")
            else:
                self.ledger.mark(name, worker, STATE_MISSING)
        return {
            "session": name,
            "workers": sorted(replies),
            "failed": failures,
            "digest": record.digest,
            # Complete means *fleet-wide*, dead workers included: a
            # session that missed a dead shard is partial until the
            # supervisor's replay installs it on the replacement.
            "complete": sorted(replies) == sorted(self.handles),
        }

    def place(self, session: str) -> Optional[str]:
        """The shard currently owning ``session`` (consistent hash over
        the live ring; rehashes automatically after a breaker trip)."""
        return self.ring.place(session)

    # -- distributed tracing ---------------------------------------------

    def _ingest_spans(self, worker: str, spans) -> int:
        """Feed one worker's piggybacked span dicts to the assembler
        (strict-JSON-converted: numpy never reaches /tracez or OTLP)."""
        if self.trace is None or not spans:
            return 0
        return self.trace.ingest(worker, wire.to_jsonable(spans))

    # -- structured logging ----------------------------------------------

    def _ingest_logs(self, worker: str, records) -> int:
        """Feed one worker's piggybacked log records to the assembler
        (strict-JSON-converted: numpy never reaches /logz or OTLP)."""
        if self.logs is None or not records:
            return 0
        return self.logs.ingest(worker, wire.to_jsonable(records))

    def _rlog(self, level: str, event: str, t_ms: float,
              trace_id: Optional[str] = None, **fields) -> None:
        """One router-side log record, immediately visible in /logz.

        Router records skip the outbox: they are minted in-process, so
        they go straight to the assembler tagged ``router`` — same
        worker-tagging discipline as router spans.
        """
        if self.log is None:
            return
        rec = self.log.log(level, event, t_ms, trace_id=trace_id, **fields)
        if self.logs is not None:
            self.logs.ingest(ROUTER_WORKER, [rec])

    def drain_logs(self) -> int:
        """Sweep every live worker's event-log outbox into the
        assembler (the ``log_drain`` counterpart of :meth:`drain_spans`).
        Returns records absorbed."""
        if self.logs is None:
            return 0
        replies, _ = self.broadcast("log_drain")
        absorbed = 0
        for worker, reply in sorted(replies.items()):
            absorbed += self._ingest_logs(worker, reply.get("logs"))
        return absorbed

    def logz(
        self,
        limit: Optional[int] = None,
        level: Optional[str] = None,
        worker: Optional[str] = None,
        trace_id: Optional[str] = None,
    ) -> dict:
        """The fleet ``/logz`` payload: sweep, then the merged stream."""
        if self.logs is None:
            return {"enabled": False, "records": [], "workers": []}
        self.drain_logs()
        payload = self.logs.to_dict(
            limit=limit, level=level, worker=worker, trace_id=trace_id
        )
        payload["enabled"] = True
        return payload

    def _sync_log_counters(self) -> None:
        """Mirror log-assembler totals into fleet_* counters
        (delta-based, safe on every scrape)."""
        if self.logs is None:
            return
        for name, help_text, total in (
            ("fleet_log_records_ingested_total",
             "log records absorbed by the fleet log assembler",
             self.logs.ingested),
            ("fleet_log_records_dropped_total",
             "log records evicted from the fleet log assembler ring",
             self.logs.dropped),
        ):
            counter = self.registry.counter(name, help_text)
            delta = total - self._trace_synced.get(name, 0)
            if delta > 0:
                counter.inc(delta)
                self._trace_synced[name] = total

    def _begin_ticket(self, session: str, rows: int):
        """Open the router-side ticket span and build the TraceContext
        workers adopt.  Trace identity is ``derive_trace_id(seed,
        "ticket:{n}")`` with a process-wide ticket counter, so two
        same-seed fleets mint identical trace ids in identical order."""
        if self.trace is None:
            return None, None
        with self._ticket_lock:
            tid = self._next_ticket
            self._next_ticket += 1
        t0 = self.now_ms
        trace_id = derive_trace_id(self.config.seed, f"ticket:{tid}")
        tspan = self.tracer.begin(
            "fleet.ticket", track="router", span_id=f"t{tid}", t_ms=t0,
            trace_id=trace_id, session=session, rows=rows,
        )
        ctx = TraceContext(
            trace_id=trace_id, parent_span_id=tspan.span_id,
            clock_offset_ms=t0,
        )
        return ctx, tspan

    def _end_ticket(self, tspan, mode: str, status: str = "ok") -> None:
        if tspan is None:
            return
        self.tracer.end(tspan.span_id, self.now_ms, status, mode=mode)
        self._ingest_spans(ROUTER_WORKER, [tspan.to_dict()])

    def drain_spans(self) -> int:
        """Sweep every live worker's tracer outbox into the assembler.

        This is the path that saves spans stranded between submits —
        including the partial spans of a ticket whose worker died and
        whose rows were rerouted elsewhere.  Returns spans absorbed.
        """
        if self.trace is None:
            return 0
        replies, _ = self.broadcast("trace_drain")
        absorbed = 0
        for worker, reply in sorted(replies.items()):
            absorbed += self._ingest_spans(worker, reply.get("spans"))
        return absorbed

    def tracez(self, limit: Optional[int] = None) -> dict:
        """The fleet ``/tracez`` payload: sweep, then merged timeline."""
        if self.trace is None:
            return {"enabled": False, "spans": [], "workers": []}
        self.drain_spans()
        payload = self.trace.to_dict(limit=limit)
        payload["enabled"] = True
        return payload

    def profilez(self) -> dict:
        """Aggregated kernel-profiler snapshots, one per live worker."""
        replies, failures = self.broadcast("profile")
        profiles = {
            w: r.get("profile") for w, r in sorted(replies.items())
        }
        enabled = any(p is not None for p in profiles.values())
        return {
            "enabled": enabled,
            "workers": profiles,
            "unreachable": sorted(failures),
        }

    def flight_dumps(self) -> dict:
        """Every flight-recorder dump in the fleet, reachable
        router-side.

        Broadcasts the ``flight`` verb: each worker answers its full
        FlightRecorder export (failure dumps frozen by ServiceErrors on
        that shard) and the router adds its own recovery recorder — so
        a worker-side failure at any ``--flight-capacity`` is
        recoverable without attaching to the worker process.
        """
        replies, failures = self.broadcast("flight")
        workers = {w: r.get("flight") for w, r in sorted(replies.items())}
        return {
            "router": wire.to_jsonable(self.flight.to_dict()),
            "workers": workers,
            "unreachable": sorted(failures),
        }

    def debugz(self, recent_errors: int = 20) -> dict:
        """One strict-JSON diagnostics snapshot of the whole fleet:
        config, ring placement, breaker states, telemetry accounting,
        and the most recent error-level records with their trace ids."""
        from dataclasses import asdict

        errors: List[dict] = []
        if self.logs is not None:
            self.drain_logs()
            errors = self.logs.records(level="error")[-recent_errors:]
        live = self.live_workers()
        return {
            "config": wire.to_jsonable(asdict(self.config)),
            "now_ms": self.now_ms,
            "workers": {
                w: {
                    "breaker": h.breaker.state,
                    "reason": h.breaker.reason,
                    "trips": h.breaker.trips,
                    "recoveries": h.breaker.recoveries,
                    "incarnation": h.incarnation,
                    "in_ring": w in self.ring,
                }
                for w, h in sorted(self.handles.items())
            },
            "ring": {
                "live": live,
                "dead": self.dead_workers(),
                "evicted": self.supervisor.evicted_workers(),
                "placements": {
                    s: self.place(s) for s in sorted(self.sessions)
                },
            },
            "sessions": {
                "names": sorted(self.sessions),
                "coverage": self.ledger.coverage(live),
                "partial": self.ledger.partial_registrations(live),
            },
            "supervision": self.supervisor.snapshot(),
            "telemetry": {
                "trace": (
                    {
                        "retained": len(self.trace),
                        "ingested": self.trace.ingested,
                        "dropped": self.trace.dropped,
                    }
                    if self.trace is not None else None
                ),
                "logs": (
                    {
                        "retained": len(self.logs),
                        "ingested": self.logs.ingested,
                        "dropped": self.logs.dropped,
                    }
                    if self.logs is not None else None
                ),
                "otlp": self.otlp.stats() if self.otlp is not None else None,
            },
            "recent_errors": errors,
        }

    def attach_otlp(self, exporter) -> None:
        """Wire an :class:`~repro.telemetry.otlp.OTLPExporter` as the
        assemblers' sink (spans + logs), point its metrics source at
        the merged fleet export, and start its flush thread."""
        self.otlp = exporter
        if self.trace is not None:
            self.trace.sink = exporter.export
        if self.logs is not None:
            self.logs.sink = exporter.export_logs
        exporter.metrics_source = self._otlp_metrics_snapshot
        exporter.clock = lambda: self.now_ms
        exporter.start()

    def _otlp_metrics_snapshot(self) -> dict:
        """Metrics payload for OTLP flushes: the merged fleet export
        while workers answer, the router's own registry after drain
        (a post-drain broadcast would only manufacture worker deaths)."""
        if self._drained:
            return self.registry.to_dict()
        try:
            return self.metrics_export()
        except Exception:
            return self.registry.to_dict()

    def _sync_trace_counters(self) -> None:
        """Mirror assembler totals into fleet_* counters (delta-based,
        safe on every scrape)."""
        if self.trace is None:
            return
        for name, help_text, total in (
            ("fleet_trace_spans_ingested_total",
             "worker spans absorbed by the fleet trace assembler",
             self.trace.ingested),
            ("fleet_trace_spans_dropped_total",
             "spans evicted from the fleet trace assembler ring",
             self.trace.dropped),
        ):
            counter = self.registry.counter(name, help_text)
            delta = total - self._trace_synced.get(name, 0)
            if delta > 0:
                counter.inc(delta)
                self._trace_synced[name] = total

    # -- query path ------------------------------------------------------

    def submit_many(
        self, session: str, coords: np.ndarray, now: Optional[float] = None
    ) -> List[Dict[str, Any]]:
        """Route or scatter one batch; per-query resolutions in order.

        Small batches go whole to the placed shard (keeps co-located
        queries on one shard — the locality future traversal fusion
        amortizes); large ones scatter-slice across every live worker
        and gather back in submission order.  A shard death mid-flight
        costs one retry against the survivors, not answers.
        """
        coords = np.asarray(coords, dtype=np.float64)
        if coords.ndim != 2:
            raise ValueError(f"coords must be (n, d), got shape {coords.shape}")
        self.observe_now(now)
        self._chaos_kill_tick(now)
        live = self.live_workers()
        if not live:
            raise RuntimeError("no live workers")
        threshold = self.config.scatter_threshold
        scatter = bool(threshold) and len(coords) >= threshold and len(live) > 1
        ctx, tspan = self._begin_ticket(session, len(coords))
        mode = "scatter" if scatter else "routed"
        try:
            if scatter:
                out = self._scatter_submit(session, coords, now, ctx, tspan)
            else:
                out = self._routed_submit(session, coords, now, ctx)
        except Exception:
            self._end_ticket(tspan, mode=mode, status="error")
            raise
        self._end_ticket(tspan, mode=mode)
        return out

    def _submit_call(
        self, worker: str, session: str, coords: np.ndarray,
        now: Optional[float], chaos: bool = True,
        ctx: Optional[TraceContext] = None,
    ) -> Dict[str, Any]:
        """One locked submit exchange (chaos-aware recv); trips on death.

        ``chaos=False`` exempts the exchange from reply-drop/stall
        injection: retries and reroutes ARE the recovery mechanism, and
        exempting them keeps the fired chaos schedule a pure function
        of (seed, logical clock) — whether a death was discovered
        mid-exchange or by the next heal pass is an OS signal-delivery
        race, and it must not change which cells draw.
        """
        handle = self.handles[worker]
        if not handle.alive:
            raise wire.WorkerGone(worker, handle.breaker.reason)
        payload: Dict[str, Any] = dict(session=session, coords=coords, now=now)
        if ctx is not None:
            payload["trace"] = ctx.to_wire()
        with handle.lock:
            try:
                wire.send_request(handle.conn, worker, "submit", **payload)
                reply = self._recv_submit_reply(handle, now if chaos else None)
            except wire.WorkerGone as exc:
                self._trip(handle, str(exc), now=now)
                raise
        self.observe_now(reply.get("now_ms"))
        self._ingest_spans(worker, reply.get("spans"))
        self._ingest_logs(worker, reply.get("logs"))
        return reply

    def _routed_submit(
        self, session: str, coords: np.ndarray, now: Optional[float],
        ctx: Optional[TraceContext] = None,
    ) -> List[Dict[str, Any]]:
        """Whole-batch route to the placed shard, one reroute on death.

        The batch is stateless on the worker side (submit + flush), so
        re-sending the identical coords to the post-rehash owner is
        safe and returns bit-identical answers.  The retry reuses the
        same TraceContext: the rerouted batch's spans still parent
        under the original ticket span.
        """
        owner = self.place(session)
        if owner is None:
            raise RuntimeError("no live workers")
        try:
            reply = self._submit_call(owner, session, coords, now, ctx=ctx)
        except wire.WorkerGone:
            retry_owner = self.place(session)
            if retry_owner is None:
                raise
            self._m["reroutes"].inc(worker=retry_owner)
            reply = self._submit_call(
                retry_owner, session, coords, now, chaos=False, ctx=ctx
            )
            owner = retry_owner
        self._m["routed"].inc(worker=owner)
        return reply["results"]

    def _scatter_submit(
        self, session: str, coords: np.ndarray, now: Optional[float],
        ctx: Optional[TraceContext] = None, tspan=None,
    ) -> List[Dict[str, Any]]:
        """Scatter slices across live workers, gather in order.

        The live set is re-checked *here*, in one snapshot used for
        both slice computation and dispatch — a worker tripped by a
        concurrent thread between ``submit_many``'s admission check
        and this point must not receive a slice (it would strand those
        rows for the retry to clean up).
        """
        handles = [
            self.handles[w] for w in self.live_workers()
        ]
        if not handles:
            raise RuntimeError("no live workers")
        slices = scatter_slices(len(coords), len(handles))
        self._m["scattered"].inc()
        acquired: List[WorkerHandle] = []
        sent: List[Tuple[WorkerHandle, slice]] = []
        parts: Dict[str, List[Dict[str, Any]]] = {}
        failures: Dict[str, Tuple[slice, str]] = {}
        try:
            for handle, sl in zip(handles, slices):
                if sl.start == sl.stop:
                    continue
                handle.lock.acquire()
                acquired.append(handle)
                slice_payload: Dict[str, Any] = dict(
                    session=session, coords=coords[sl], now=now
                )
                if ctx is not None:
                    slice_payload["trace"] = ctx.to_wire()
                try:
                    wire.send_request(
                        handle.conn, handle.id, "submit", **slice_payload
                    )
                    sent.append((handle, sl))
                    self._m["scatter_rows"].inc(
                        sl.stop - sl.start, worker=handle.id
                    )
                except wire.WorkerGone as exc:
                    self._trip(handle, str(exc), now=now)
                    failures[handle.id] = (sl, str(exc))
            for handle, sl in sent:
                try:
                    reply = self._recv_submit_reply(handle, now)
                    parts[handle.id] = reply["results"]
                    self.observe_now(reply.get("now_ms"))
                    self._ingest_spans(handle.id, reply.get("spans"))
                    self._ingest_logs(handle.id, reply.get("logs"))
                except (wire.WorkerGone, wire.WireError) as exc:
                    if isinstance(exc, wire.WorkerGone):
                        self._trip(handle, str(exc), now=now)
                    failures[handle.id] = (sl, str(exc))
        finally:
            for handle in acquired:
                handle.lock.release()
        # Gather in submission order; rows lost to a dead shard resolve
        # with a typed error payload (never silently dropped).
        out: List[Dict[str, Any]] = [
            {
                "ok": False, "backend": None, "latency_ms": 0.0,
                "result": None,
                "error": {"code": "shard-lost", "message": "row unassigned"},
            }
            for _ in range(len(coords))
        ]
        for handle, sl in zip(handles, slices):
            if handle.id in parts:
                for offset, row in enumerate(parts[handle.id]):
                    out[sl.start + offset] = row
            elif sl.start != sl.stop:
                detail = failures.get(handle.id, (sl, "worker unavailable"))[1]
                for i in range(sl.start, sl.stop):
                    out[i]["error"]["message"] = detail
        if self.config.scatter_retry:
            self._retry_lost_rows(session, coords, out, now, ctx, tspan)
        return out

    def _retry_lost_rows(
        self, session: str, coords: np.ndarray,
        out: List[Dict[str, Any]], now: Optional[float],
        ctx: Optional[TraceContext] = None, tspan=None,
    ) -> None:
        """One-shot retry of ``shard-lost`` rows against the survivors.

        Safe because traversal answers depend only on (session data,
        coordinates): re-executing a stranded row on any worker that
        holds the session yields the bit-identical result.  One shot —
        if the retry shard dies too, the rows keep their typed error.
        """
        lost = [
            i for i, row in enumerate(out)
            if row["error"] is not None
            and row["error"].get("code") == "shard-lost"
        ]
        if not lost:
            return
        owner = self.place(session)
        if owner is None:
            return
        self._m["scatter_retries"].inc()
        self._rlog(
            "warn", "fleet.scatter_retry", self.now_ms,
            trace_id=ctx.trace_id if ctx is not None else None,
            session=session, rows=len(lost), worker=owner,
        )
        if tspan is not None:
            # The retried rows run under the SAME context: their spans
            # parent under the original ticket's trace id, so a chaos
            # kill mid-scatter still renders as one trace.
            tspan.event(
                "scatter_retry", self.now_ms, rows=len(lost), worker=owner
            )
        try:
            reply = self._submit_call(
                owner, session, coords[np.asarray(lost)], now, chaos=False,
                ctx=ctx,
            )
        except (wire.WorkerGone, wire.WireError):
            return  # one shot spent; rows keep their typed error
        for i, row in zip(lost, reply["results"]):
            out[i] = row
        self._m["scatter_retry_rows"].inc(len(lost), worker=owner)

    def run_load(self, ticks: int = 1, queries_per_tick: int = 8,
                 tick_ms: float = 2.0, keep_results: bool = False,
                 ) -> Dict[str, Dict[str, Any]]:
        """Fan one seeded load burst out to every live worker."""
        self._chaos_kill_tick(self.now_ms if self.chaos else None)
        replies, failures = self.broadcast(
            "run_load", ticks=ticks, queries_per_tick=queries_per_tick,
            tick_ms=tick_ms, keep_results=keep_results,
        )
        for worker, reply in sorted(replies.items()):
            self.observe_now(reply.get("now_ms"))
            self._ingest_spans(worker, reply.get("spans"))
            self._ingest_logs(worker, reply.get("logs"))
        for worker, reason in failures.items():
            replies[worker] = {"ok": False, "error": reason}
        return replies

    # -- healing ---------------------------------------------------------

    def heal(self, now: Optional[float] = None) -> Dict[str, str]:
        """One supervision pass: detect deaths, restart the eligible.

        Returns ``{worker: action}`` where action is ``restarted``,
        ``restart-failed``, ``evicted``, or ``wait``.  Safe to call
        from a background thread (concurrent callers skip).  Callers
        that own a logical clock pass ``now`` explicitly (deterministic
        supervision); serve mode uses :meth:`wall_now_ms`.
        """
        if not self.config.supervise:
            return {}
        if not self._heal_lock.acquire(blocking=False):
            return {}
        try:
            now = self.observe_now(now) if now is not None else self.now_ms
            # 1. Detect silent deaths: a SIGKILLed worker whose pipe
            # nobody has touched since.
            for worker in self.live_workers():
                handle = self.handles[worker]
                if not handle.proc.is_alive():
                    self._trip(
                        handle,
                        f"process exited (exitcode {handle.proc.exitcode})",
                        now=now,
                    )
            # 2. Restart the dead where policy allows; evict the hopeless.
            actions: Dict[str, str] = {}
            for worker in self.dead_workers():
                handle = self.handles[worker]
                if handle.breaker.state != BREAKER_OPEN:
                    continue  # half-open: a restart is already in flight
                decision = self.supervisor.decide(worker, now)
                if decision == DECIDE_RESTART:
                    ok = self._respawn(handle, now)
                    actions[worker] = "restarted" if ok else "restart-failed"
                elif decision == DECIDE_EVICT:
                    if worker not in self._evictions_recorded:
                        self._evictions_recorded.add(worker)
                        self._m["evictions"].inc(worker=worker)
                        handle.breaker.reason = (
                            f"evicted (restart budget exhausted): "
                            f"{handle.breaker.reason}"
                        )
                        self._rlog(
                            "error", "fleet.evicted", now, worker=worker,
                            reason=handle.breaker.reason,
                        )
                        self._update_worker_gauges()
                    actions[worker] = "evicted"
                else:
                    actions[worker] = "wait"
            return actions
        finally:
            self._heal_lock.release()

    def _respawn(self, handle: WorkerHandle, now: float) -> bool:
        """Replace a dead worker's process; replay, probe, re-join.

        The breaker goes ``half_open`` for the duration: the shard is
        out of the ring and takes no traffic until the session catalog
        has replayed (digest-verified against the ledger) and a probe
        ping answers.  Success closes the breaker and re-adds the ring
        vnodes (same seeds — placement is restored exactly); any
        failure re-opens it and counts against the restart budget.
        """
        died_at = self.supervisor.dead_since(handle.id)
        span = self.tracer.begin(
            "fleet.recover", track=handle.id,
            span_id=f"recover:{handle.id}:{handle.incarnation + 1}",
            t_ms=now, reason=handle.breaker.reason,
        )
        with handle.lock:
            old = handle.proc
            if old.is_alive():
                # drop-reply / stall trips leave a healthy-but-unusable
                # process behind; replacement starts by retiring it.
                old.terminate()
                old.join(timeout=5.0)
                if old.is_alive():
                    old.kill()
                    old.join(timeout=5.0)
            else:
                old.join(timeout=1.0)
            try:
                handle.conn.close()
            except OSError:
                pass
            handle.incarnation += 1
            proc, conn = self._spawn(
                handle.id, handle.index, handle.incarnation
            )
            handle.proc = proc
            handle.conn = conn
            handle.breaker.half_open("restart in flight")
            self._update_worker_gauges()
            try:
                wire.recv_reply(
                    conn, handle.id, timeout=self.config.call_timeout_s
                )
                span.event("booted", self.now_ms)
                replayed = self._replay_sessions(handle, span)
                wire.call(
                    conn, handle.id, "ping",
                    timeout=self.config.call_timeout_s,
                )
                span.event("probed", self.now_ms)
            except (wire.WorkerGone, wire.WireError) as exc:
                handle.breaker.trip(f"restart failed: {exc}")
                self.ledger.mark_worker_lost(handle.id)
                self.supervisor.note_restart_failed(handle.id, now)
                self._m["restart_failures"].inc(worker=handle.id)
                self._update_worker_gauges()
                self.tracer.end(span.span_id, self.now_ms, status="error",
                                error=str(exc))
                self.flight.record(handle.id, span.to_dict())
                self._ingest_spans(ROUTER_WORKER, [span.to_dict()])
                self._rlog(
                    "error", "fleet.restart_failed", self.now_ms,
                    worker=handle.id, incarnation=handle.incarnation,
                    error=str(exc),
                )
                return False
        with self._state_lock:
            if handle.id not in self.ring:
                self.ring.add(handle.id)
        handle.breaker.close()
        self.supervisor.note_restarted(handle.id, now)
        self._m["restarts"].inc(worker=handle.id)
        if died_at is not None:
            self._m["recovery_ms"].observe(max(0.0, now - died_at))
        self._update_worker_gauges()
        self.tracer.end(
            span.span_id, self.now_ms, status="ok",
            sessions_replayed=replayed, incarnation=handle.incarnation,
        )
        self.flight.record(handle.id, span.to_dict())
        # Satellite contract: a heal is visible on the same merged
        # /tracez timeline as the tickets it delayed.
        self._ingest_spans(ROUTER_WORKER, [span.to_dict()])
        self._rlog(
            "info", "fleet.restarted", self.now_ms, worker=handle.id,
            incarnation=handle.incarnation, sessions_replayed=replayed,
        )
        return True

    def _replay_sessions(self, handle: WorkerHandle, span) -> int:
        """Replay the ledger into a half-open worker (caller holds the
        handle lock).  Digest mismatch is a replay failure: the rejoined
        shard must serve from bit-identical data or not at all."""
        replayed = 0
        for record in self.ledger.records():
            reply = wire.call(
                handle.conn, handle.id, "register",
                name=record.name, app=record.app, data=record.data,
                build_kwargs=record.build_kwargs,
                timeout=self.config.call_timeout_s,
            )
            echoed = reply.get("digest")
            if echoed is not None and echoed != record.digest:
                raise wire.WireError(
                    f"worker {handle.id!r}: replay digest mismatch for "
                    f"{record.name!r} (worker built {echoed}, ledger "
                    f"holds {record.digest})"
                )
            self.ledger.mark(record.name, handle.id, STATE_OK)
            self._m["replays"].inc(worker=handle.id)
            span.event("replayed", self.now_ms, session=record.name)
            replayed += 1
        return replayed

    # -- aggregation (the HTTP payloads) ---------------------------------

    def metrics_export(self) -> dict:
        """Merged fleet metrics: per-worker-labelled series + fleet_*."""
        replies, _ = self.broadcast("metrics")
        exports = {
            w: r.get("metrics") for w, r in replies.items()
            if r.get("metrics") is not None
        }
        self._sync_trace_counters()
        self._sync_log_counters()
        if self.otlp is not None:
            self.otlp.sync_metrics(self.registry)
        merged = merge_labeled_exports(exports, label="worker")
        merged.update(self.registry.to_dict())  # fleet_* families
        return merged

    def metrics_text(self) -> str:
        return expose_export_text(self.metrics_export())

    def metrics_summed(self) -> dict:
        """Fleet totals: counters summed, histograms bucket-merged."""
        replies, _ = self.broadcast("metrics")
        exports = {
            w: r.get("metrics") for w, r in replies.items()
            if r.get("metrics") is not None
        }
        return sum_exports(exports)

    def healthz(self) -> dict:
        """Fleet readiness: degraded if any worker is degraded or dead.

        A healed worker reports healthy again — recovery is visible
        here, not just in the counters.  Evicted workers stay degraded
        forever (an exhausted restart budget is a terminal loss).
        """
        replies, failures = self.broadcast("health")
        workers: Dict[str, dict] = {}
        degraded: List[str] = []
        for worker in sorted(self.handles):
            handle = self.handles[worker]
            if not handle.alive:
                status = "dead"
                if handle.breaker.state == BREAKER_HALF_OPEN:
                    status = "recovering"
                elif self.supervisor.is_evicted(worker):
                    status = "evicted"
                workers[worker] = {
                    "status": status, "ok": False,
                    "reason": handle.breaker.reason,
                    "restarts": handle.breaker.recoveries,
                }
                degraded.append(worker)
            elif worker in replies:
                payload = replies[worker]["health"]
                workers[worker] = payload
                if not payload.get("ok", False):
                    degraded.append(worker)
            else:
                workers[worker] = {
                    "status": "unreachable", "ok": False,
                    "reason": failures.get(worker, "no reply"),
                }
                degraded.append(worker)
        ok = not degraded
        return {
            "status": "ok" if ok else "degraded",
            "ok": ok,
            "workers": workers,
            "checks": {
                "degraded_workers": sorted(degraded),
                "dead_workers": self.dead_workers(),
                "live_workers": self.live_workers(),
                "evicted_workers": self.supervisor.evicted_workers(),
                "restarts_total": self.supervisor.total_restarts(),
                "sessions": sorted(self.sessions),
                "partial_registrations": self.ledger.partial_registrations(
                    self.live_workers()
                ),
            },
        }

    def statsz(self) -> dict:
        """Strict-JSON fleet snapshot: per-worker stats + aggregate.

        Aggregate counters are sums; aggregate latency quantiles are
        query-weighted means of worker quantiles (an approximation,
        labelled as such) and are ``None`` — never ``NaN`` — when no
        worker has samples, preserving the PR-2 strict-JSON round-trip
        contract fleet-wide.  The ``fleet`` section carries the
        supervision ledger: per-session registration coverage, partial
        registrations, restart history, and recent recovery timelines.
        """
        replies, failures = self.broadcast("stats")
        worker_stats = {w: r["stats"] for w, r in replies.items()}
        agg = _aggregate_stats(list(worker_stats.values()))
        live = self.live_workers()
        return {
            "fleet": {
                "workers": len(self.handles),
                "workers_alive": len(live),
                "workers_dead": self.dead_workers(),
                "workers_evicted": self.supervisor.evicted_workers(),
                "unreachable": sorted(failures),
                "sessions": sorted(self.sessions),
                "session_coverage": self.ledger.coverage(live),
                "partial_registrations": self.ledger.partial_registrations(
                    live
                ),
                "scatter_batches": self._m["scattered"].value(),
                "scatter_retries": self._m["scatter_retries"].value(),
                "supervision": self.supervisor.snapshot(),
                "recoveries": {
                    w: wire.to_jsonable(self.flight.ring(w))
                    for w in self.flight.sessions()
                },
                "chaos_events": (
                    self.chaos.schedule() if self.chaos is not None else []
                ),
                "placements": {
                    s: self.place(s) for s in sorted(self.sessions)
                },
                "trace": (
                    {
                        "retained": len(self.trace),
                        "ingested": self.trace.ingested,
                        "dropped": self.trace.dropped,
                    }
                    if self.trace is not None
                    else None
                ),
                "logs": (
                    {
                        "retained": len(self.logs),
                        "ingested": self.logs.ingested,
                        "dropped": self.logs.dropped,
                    }
                    if self.logs is not None
                    else None
                ),
                "otlp": self.otlp.stats() if self.otlp is not None else None,
            },
            "aggregate": agg,
            "workers": worker_stats,
        }

    # -- drain -----------------------------------------------------------

    def drain(self, timeout_s: float = 30.0) -> Dict[str, Any]:
        """Fleet-wide graceful drain (the SIGTERM path).

        Fans ``drain`` out to every live worker (each flushes pending
        queries — drain-or-fail — and exits 0), joins the processes,
        and reports per-worker pending depths and exit codes.  ``ok``
        is True only when every *current* worker drained with nothing
        pending and exited cleanly: a worker that died and was healed
        by a restart drains through its replacement process and does
        not taint the exit, while an unhealed or evicted worker makes
        the drain not-ok by definition (its queries cannot be
        accounted for).
        """
        self.drain_spans()  # final sweeps while the workers still answer
        self.drain_logs()
        report: Dict[str, dict] = dict(self._drained)
        for worker in self.live_workers():
            handle = self.handles[worker]
            try:
                reply = self._call(worker, "drain")
                self._ingest_spans(worker, reply.get("spans"))
                self._ingest_logs(worker, reply.get("logs"))
                report[worker] = {
                    "pending": int(reply.get("pending", -1)),
                    "drained": bool(reply.get("drained", False)),
                }
                self._rlog(
                    "info" if report[worker]["drained"] else "warn",
                    "fleet.drain_verdict", self.now_ms, worker=worker,
                    pending=report[worker]["pending"],
                    drained=report[worker]["drained"],
                )
            except (wire.WorkerGone, wire.WireError) as exc:
                report[worker] = {
                    "pending": -1, "drained": False, "error": str(exc),
                }
                self._rlog(
                    "error", "fleet.drain_verdict", self.now_ms,
                    worker=worker, pending=-1, drained=False,
                    error=str(exc),
                )
        deadline = time.monotonic() + timeout_s
        for worker, handle in sorted(self.handles.items()):
            remaining = max(0.0, deadline - time.monotonic())
            handle.proc.join(timeout=remaining)
            if handle.proc.is_alive():
                # Workers shield SIGTERM (they exit via the drain
                # protocol), so escalation goes straight past it.
                handle.proc.terminate()
                handle.proc.join(timeout=5.0)
                if handle.proc.is_alive():
                    handle.proc.kill()
                    handle.proc.join(timeout=5.0)
            entry = report.setdefault(
                worker,
                {"pending": -1, "drained": False,
                 "error": handle.breaker.reason or "dead before drain"},
            )
            entry["exitcode"] = handle.proc.exitcode
            entry["incarnation"] = handle.incarnation
            entry["restarts"] = handle.breaker.recoveries
            handle.conn.close()
        ok = bool(report) and all(
            e.get("drained") and e.get("exitcode") == 0
            for e in report.values()
        )
        self._drained = report
        return {
            "ok": ok,
            "workers": report,
            "restarts_total": self.supervisor.total_restarts(),
            "evicted": self.supervisor.evicted_workers(),
        }


# -- statsz aggregation ----------------------------------------------------

#: counters summed across workers in the aggregate view.
_SUM_FIELDS = (
    "queries_submitted", "queries_completed", "queries_failed",
    "queue_depth", "batches", "flush_full", "flush_timeout",
    "flush_forced", "total_exec_ms",
)


def _weighted_mean(
    pairs: List[Tuple[Optional[float], float]]
) -> Optional[float]:
    """Weight-averaged value over (value, weight) pairs; None — never
    NaN — when no pair carries a sample (the empty-worker fix)."""
    num = 0.0
    den = 0.0
    for value, weight in pairs:
        if value is None or weight <= 0:
            continue
        num += value * weight
        den += weight
    return num / den if den > 0 else None


def _aggregate_stats(worker_stats: List[dict]) -> dict:
    """Sum/merge per-worker ServiceStats dicts into one fleet row."""
    agg: Dict[str, Any] = {w: 0 for w in _SUM_FIELDS}
    agg["sessions"] = 0
    for stats in worker_stats:
        for fname in _SUM_FIELDS:
            agg[fname] += stats.get(fname) or 0
        agg["sessions"] = max(agg["sessions"], stats.get("sessions") or 0)
    weights = [float(s.get("queries_completed") or 0) for s in worker_stats]
    agg["p50_latency_ms"] = _weighted_mean(
        [(s.get("p50_latency_ms"), w) for s, w in zip(worker_stats, weights)]
    )
    agg["p95_latency_ms"] = _weighted_mean(
        [(s.get("p95_latency_ms"), w) for s, w in zip(worker_stats, weights)]
    )
    agg["latency_note"] = (
        "fleet quantiles are query-weighted means of worker quantiles"
    )
    resilience: Dict[str, int] = {}
    for stats in worker_stats:
        r = stats.get("resilience") or {}
        for key in ("retries", "degraded_batches", "failed_batches",
                    "shed_rejected", "shed_dropped", "deadline_misses"):
            resilience[key] = resilience.get(key, 0) + (r.get(key) or 0)
    agg["resilience"] = resilience
    agg["workers_reporting"] = len(worker_stats)
    return agg


# -- HTTP front-end --------------------------------------------------------


class FleetServer:
    """Router behind the serve-mode HTTP surface, fleet edition.

    Routes: ``/metrics`` (merged exposition), ``/healthz`` (fleet
    readiness, 503 while degraded), ``/statsz`` (strict-JSON fleet
    snapshot), ``/tracez`` (merged fleet timeline, ``?format=chrome``
    for trace_event JSON), ``/logz`` (merged structured log stream,
    filterable by level / worker / trace id), ``/debugz`` (one
    strict-JSON diagnostics snapshot), ``/profilez`` (per-worker
    kernel profiles).  Malformed query params answer 400 with a JSON
    error body, never a 500 traceback.
    A background load pump fans seeded synthetic ticks to
    the workers so a scraped fleet shows a live, moving system, and a
    supervision loop heals dead workers (restart + ledger replay) so a
    SIGKILLed worker shows up in ``/healthz`` as degraded, then
    recovers.
    """

    def __init__(
        self,
        router: FleetRouter,
        host: str = "127.0.0.1",
        port: int = 0,
        load_queries_per_tick: int = 0,
        load_tick_ms: float = 2.0,
        load_interval_s: float = 0.05,
        heal_interval_s: float = 0.25,
        trace_interval_s: float = 0.5,
    ) -> None:
        self.router = router
        self.host = host
        self.port = port
        self.load_queries_per_tick = load_queries_per_tick
        self.load_tick_ms = load_tick_ms
        self.load_interval_s = load_interval_s
        self.heal_interval_s = heal_interval_s
        self.trace_interval_s = trace_interval_s
        self._httpd: Optional[ThreadingHTTPServer] = None
        self._thread: Optional[threading.Thread] = None
        self._pump: Optional[threading.Thread] = None
        self._healer: Optional[threading.Thread] = None
        self._trace_pump: Optional[threading.Thread] = None
        self._halt = threading.Event()
        self._shut = False

    # -- lifecycle -------------------------------------------------------

    def start(self) -> Tuple[str, int]:
        if self._httpd is not None:
            raise RuntimeError("fleet server already started")
        server = self

        class _Handler(BaseHTTPRequestHandler):
            server_version = "repro-fleet/1.0"
            protocol_version = "HTTP/1.1"

            def do_GET(self) -> None:  # noqa: N802 (http.server API)
                try:
                    status, ctype, body = server.respond(self.path)
                except Exception as exc:
                    status, ctype = 500, JSON_CONTENT_TYPE
                    body = json.dumps({"error": repr(exc)}).encode()
                self.send_response(status)
                self.send_header("Content-Type", ctype)
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)

            def log_message(self, fmt, *args) -> None:
                pass

        self._httpd = ThreadingHTTPServer((self.host, self.port), _Handler)
        self._httpd.daemon_threads = True
        self.host, self.port = self._httpd.server_address[:2]
        self._thread = threading.Thread(
            target=self._httpd.serve_forever, name="fleet-http", daemon=True
        )
        self._thread.start()
        if self.load_queries_per_tick > 0:
            self._pump = threading.Thread(
                target=self._pump_loop, name="fleet-load-pump", daemon=True
            )
            self._pump.start()
        if self.router.config.supervise:
            self._healer = threading.Thread(
                target=self._heal_loop, name="fleet-healer", daemon=True
            )
            self._healer.start()
        if self.router.trace is not None or self.router.logs is not None:
            self._trace_pump = threading.Thread(
                target=self._trace_loop, name="fleet-trace-drain", daemon=True
            )
            self._trace_pump.start()
        return self.host, self.port

    def _pump_loop(self) -> None:
        while not self._halt.is_set():
            try:
                self.router.run_load(
                    ticks=1,
                    queries_per_tick=self.load_queries_per_tick,
                    tick_ms=self.load_tick_ms,
                )
            except RuntimeError:
                # No live workers right now; the healer may still bring
                # some back, so keep pumping until shutdown.
                pass
            self._halt.wait(self.load_interval_s)

    def _heal_loop(self) -> None:
        """Background supervision: serve mode heals on the wall-floored
        clock (an idle fleet's backoff must still elapse)."""
        while not self._halt.is_set():
            try:
                self.router.heal(now=self.router.wall_now_ms())
            except Exception:
                pass  # supervision must never kill the serving loop
            self._halt.wait(self.heal_interval_s)

    def _trace_loop(self) -> None:
        """Periodic trace_drain + log_drain sweep: spans and log
        records stranded between submits (or orphaned by a worker
        death) still reach the assemblers."""
        while not self._halt.is_set():
            try:
                self.router.drain_spans()
                self.router.drain_logs()
            except Exception:
                pass  # telemetry collection must never kill serving
            self._halt.wait(self.trace_interval_s)

    def shutdown(self) -> Dict[str, Any]:
        """Stop load, drain the fleet, close the listener; idempotent."""
        if self._shut:
            return self.router._drained and {
                "ok": all(
                    e.get("drained") and e.get("exitcode") == 0
                    for e in self.router._drained.values()
                ),
                "workers": self.router._drained,
            } or {"ok": False, "workers": {}}
        self._shut = True
        self._halt.set()
        if self._pump is not None:
            self._pump.join(timeout=10.0)
        if self._healer is not None:
            self._healer.join(timeout=10.0)
        if self._trace_pump is not None:
            self._trace_pump.join(timeout=10.0)
        report = self.router.drain()
        if self.router.otlp is not None:
            # After the final drain sweep the assembler has everything;
            # one last flush, then the exporter thread stops.
            self.router.otlp.stop(flush=True)
        if self._httpd is not None:
            self._httpd.shutdown()
            self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
        return report

    def __enter__(self) -> "FleetServer":
        self.start()
        return self

    def __exit__(self, *exc) -> None:
        self.shutdown()

    # -- routing ---------------------------------------------------------

    def respond(self, path: str) -> Tuple[int, str, bytes]:
        """Route one GET (shared by the HTTP handler and the tests)."""
        parts = urlsplit(path)
        route = parts.path.rstrip("/") or "/"
        if route == "/metrics":
            return 200, METRICS_CONTENT_TYPE, self.router.metrics_text().encode()
        if route == "/healthz":
            health = self.router.healthz()
            return self._json(200 if health["ok"] else 503, health)
        if route == "/statsz":
            return self._statsz(parts.query)
        if route == "/tracez":
            return self._tracez(parts.query)
        if route == "/logz":
            return self._logz(parts.query)
        if route == "/debugz":
            return self._json(200, self.router.debugz())
        if route == "/profilez":
            return self._json(200, self.router.profilez())
        return self._json(
            404,
            {
                "error": f"no route {route!r}",
                "routes": [
                    "/metrics", "/healthz", "/statsz", "/tracez", "/logz",
                    "/debugz", "/profilez",
                ],
            },
        )

    @staticmethod
    def _parse_limit(params: dict):
        """``?limit=N`` → (limit, error_payload).  Malformed or negative
        values are a client error (400 + JSON body), never a traceback.
        """
        if "limit" not in params:
            return None, None
        raw = params["limit"][-1]
        try:
            limit = int(raw)
        except ValueError:
            return None, {"error": f"limit must be an integer, got {raw!r}"}
        if limit < 0:
            return None, {"error": f"limit must be >= 0, got {limit}"}
        return limit, None

    def _statsz(self, query: str) -> Tuple[int, str, bytes]:
        _, bad = self._parse_limit(parse_qs(query))
        if bad is not None:
            return self._json(400, bad)
        return self._json(200, self.router.statsz())

    def _tracez(self, query: str) -> Tuple[int, str, bytes]:
        """Merged fleet timeline; ``?limit=N`` caps the span list and
        ``?format=chrome`` returns the Chrome trace_event export."""
        params = parse_qs(query)
        limit, bad = self._parse_limit(params)
        if bad is not None:
            return self._json(400, bad)
        if params.get("format", [""])[-1] == "chrome":
            if self.router.trace is None:
                return self._json(200, {"traceEvents": []})
            self.router.drain_spans()
            return self._json(200, self.router.trace.chrome_trace())
        return self._json(200, self.router.tracez(limit=limit))

    def _logz(self, query: str) -> Tuple[int, str, bytes]:
        """Merged fleet log stream; ``?limit=N`` caps the record list,
        ``?level=warn`` is a severity floor, ``?worker=w0`` and
        ``?trace_id=...`` are exact-match filters."""
        params = parse_qs(query)
        limit, bad = self._parse_limit(params)
        if bad is not None:
            return self._json(400, bad)
        level = params.get("level", [None])[-1]
        if level is not None and level not in LEVELS:
            return self._json(
                400,
                {"error": f"level must be one of {list(LEVELS)}, "
                          f"got {level!r}"},
            )
        worker = params.get("worker", [None])[-1]
        trace_id = params.get("trace_id", [None])[-1]
        return self._json(
            200,
            self.router.logz(
                limit=limit, level=level, worker=worker, trace_id=trace_id
            ),
        )

    @staticmethod
    def _json(status: int, payload: dict) -> Tuple[int, str, bytes]:
        # allow_nan=False: the strict-JSON contract, fleet-wide.
        body = json.dumps(payload, indent=2, allow_nan=False).encode()
        return status, JSON_CONTENT_TYPE, body


def run_fleet(
    server: FleetServer,
    *,
    duration_s: Optional[float] = None,
    announce=print,
) -> int:
    """Blocking fleet loop with SIGTERM/SIGINT fan-out drain.

    Mirrors :func:`repro.service.serve.run_serve`: runs until a signal
    (or ``duration_s``), then drains the whole fleet.  Exit code 0
    *only* when every current worker drained clean and exited 0 —
    deaths healed by the supervisor do not taint the exit.
    """
    stop = threading.Event()
    previous = {}

    def _on_signal(signum, frame) -> None:
        stop.set()

    for sig in (signal.SIGTERM, signal.SIGINT):
        try:
            previous[sig] = signal.signal(sig, _on_signal)
        except ValueError:
            pass  # not the main thread (tests drive run_fleet directly)
    host, port = server.start()
    announce(
        f"fleet of {len(server.router.handles)} workers on "
        f"http://{host}:{port} (/metrics /healthz /statsz /tracez /logz "
        "/debugz /profilez) — SIGTERM or Ctrl-C drains every worker "
        "and exits"
    )
    deadline = time.monotonic() + duration_s if duration_s else None
    try:
        while not stop.is_set():
            if deadline is not None and time.monotonic() >= deadline:
                break
            stop.wait(0.1)
    finally:
        report = server.shutdown()
        for sig, handler in previous.items():
            signal.signal(sig, handler)
    pendings = {
        w: e.get("pending") for w, e in report["workers"].items()
    }
    announce(
        f"fleet drained and stopped (ok={report['ok']}, "
        f"restarts={report.get('restarts_total', 0)}, "
        f"pending per worker: {pendings})"
    )
    if not report["ok"]:
        # A not-ok drain must say why, per worker, or the exit code is
        # undebuggable from the smoke-job log alone.
        for worker, entry in sorted(report["workers"].items()):
            if entry.get("error") or entry.get("exitcode") != 0:
                announce(
                    f"  {worker}: error={entry.get('error')!r} "
                    f"exitcode={entry.get('exitcode')}"
                )
    return 0 if report["ok"] else 1
