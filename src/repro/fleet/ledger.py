"""Router-held session ledger: the replay source for worker restarts.

The fleet is shared-nothing — every worker builds its own trees — so
when a worker process dies, its sessions are not *lost*, they are
merely absent from the replacement process.  The ledger is the
router-side record that makes resurrection possible: at ``register``
time it captures everything needed to rebuild a session bit-for-bit
on a fresh worker —

* the app name and build kwargs exactly as the client sent them;
* the query data as a defensive contiguous ``float64`` copy (the same
  array the original broadcast shipped);
* a SHA-1 **digest** over the data bytes + shape + dtype, so a replay
  can prove the replacement worker built from identical bytes (the
  worker echoes the digest of what it received back in its register
  reply, and the supervisor refuses the rejoin on mismatch);
* per-worker registration **state** — ``"ok"``, ``"failed: ..."``, or
  ``"missing"`` (the worker was dead or unreachable at register time)
  — so partial fleet coverage is a visible fact in ``/statsz`` instead
  of a silent claim of fleet-wide registration.

The ledger holds data arrays by reference; for the service sizes the
fleet runs (thousands of points, not billions) that is the honest
price of being able to heal.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

import numpy as np

#: per-worker registration states the ledger records.
STATE_OK = "ok"
STATE_MISSING = "missing"  # worker dead/unreachable at register time


def data_digest(data: np.ndarray) -> str:
    """SHA-1 hex digest over a session's data bytes + shape + dtype.

    Computed on a contiguous ``float64`` view so the router-side record
    and the worker-side echo agree regardless of the input's original
    layout.  This is the bit-identity token the replay protocol checks.
    """
    arr = np.ascontiguousarray(data, dtype=np.float64)
    h = hashlib.sha1()
    h.update(str(arr.shape).encode())
    h.update(str(arr.dtype).encode())
    h.update(arr.tobytes())
    return h.hexdigest()


@dataclass
class SessionRecord:
    """Everything needed to rebuild one session on a fresh worker."""

    name: str
    app: str
    data: np.ndarray
    build_kwargs: Dict[str, Any]
    digest: str
    registered_at_ms: float
    #: worker id -> "ok" | "failed: <reason>" | "missing"
    workers: Dict[str, str] = field(default_factory=dict)

    def ok_workers(self) -> List[str]:
        return sorted(w for w, s in self.workers.items() if s == STATE_OK)

    def to_dict(self) -> dict:
        """Strict-JSON summary (no data arrays) for /statsz."""
        return {
            "app": self.app,
            "n": int(len(self.data)),
            "digest": self.digest,
            "registered_at_ms": float(self.registered_at_ms),
            "workers": dict(sorted(self.workers.items())),
        }


class SessionLedger:
    """Ordered catalog of registered sessions + per-worker coverage."""

    def __init__(self) -> None:
        self._records: Dict[str, SessionRecord] = {}  # insertion-ordered

    # -- recording -------------------------------------------------------

    def begin(
        self,
        name: str,
        app: str,
        data: np.ndarray,
        build_kwargs: Dict[str, Any],
        now_ms: float = 0.0,
    ) -> SessionRecord:
        """Open (or refresh) the record for one registration broadcast."""
        data = np.ascontiguousarray(data, dtype=np.float64)
        record = SessionRecord(
            name=name,
            app=app,
            data=data,
            build_kwargs=dict(build_kwargs),
            digest=data_digest(data),
            registered_at_ms=float(now_ms),
        )
        self._records[name] = record
        return record

    def forget(self, name: str) -> bool:
        """Drop a session (registration failed everywhere, or client
        unregistered); False when it was never recorded."""
        return self._records.pop(name, None) is not None

    def mark(self, name: str, worker: str, state: str) -> None:
        """Record one worker's registration outcome for a session."""
        self._records[name].workers[worker] = state

    def mark_worker_lost(self, worker: str) -> None:
        """A worker died: every session it held is now missing there."""
        for record in self._records.values():
            if record.workers.get(worker) == STATE_OK:
                record.workers[worker] = STATE_MISSING

    # -- queries ---------------------------------------------------------

    def names(self) -> List[str]:
        return list(self._records)

    def __len__(self) -> int:
        return len(self._records)

    def __contains__(self, name: str) -> bool:
        return name in self._records

    def get(self, name: str) -> Optional[SessionRecord]:
        return self._records.get(name)

    def records(self) -> List[SessionRecord]:
        """All records in registration order (the replay order)."""
        return list(self._records.values())

    def partial_registrations(self, live_workers: List[str]) -> List[str]:
        """Sessions not ``ok`` on every *live* worker — the coverage
        gaps ``/statsz`` must surface instead of claiming fleet-wide
        registration."""
        out = []
        for name, record in self._records.items():
            if any(record.workers.get(w) != STATE_OK for w in live_workers):
                out.append(name)
        return out

    def coverage(self, live_workers: List[str]) -> Dict[str, dict]:
        """Strict-JSON per-session coverage view for /statsz."""
        out: Dict[str, dict] = {}
        for name, record in self._records.items():
            missing = sorted(
                w for w in live_workers if record.workers.get(w) != STATE_OK
            )
            entry = record.to_dict()
            entry["complete"] = not missing
            entry["missing_on"] = missing
            out[name] = entry
        return out
