"""Consistent-hash session placement for the serve fleet.

Sessions are partitioned across shared-nothing workers by consistent
hashing so that placement is

* **deterministic** — the hash is SHA-1 over the session id, never
  Python's per-process-salted ``hash()``, so the router, the tests,
  and any future second router agree on placement;
* **stable under membership change** — when a worker joins or leaves,
  only the keys adjacent to its virtual nodes move.  With ``R``
  virtual replicas per worker the expected fraction of keys that move
  on a join/leave of one worker among ``n`` is ``1/n`` (the departing
  worker's arc), which the property tests bound;
* **uniform** — virtual replicas smooth the arc lengths; with the
  default ``replicas=96`` the per-worker share of a large keyset stays
  within a small factor of ``1/n``.

The router removes a dead worker from the ring (breaker trip), which
rehashes *new* sessions away from the dead shard; sessions already
placed on it are reported unavailable rather than silently moved,
because a shared-nothing peer does not have their trees.
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Dict, Iterable, List, Optional, Tuple

#: virtual nodes per worker: enough to keep the max/mean arc ratio low
#: without making membership changes O(expensive).
DEFAULT_REPLICAS = 96


def stable_hash(key: str) -> int:
    """64-bit SHA-1-derived position on the ring (process-independent)."""
    digest = hashlib.sha1(key.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


class HashRing:
    """Consistent hash ring mapping string keys to worker ids."""

    def __init__(
        self,
        workers: Iterable[str] = (),
        replicas: int = DEFAULT_REPLICAS,
    ) -> None:
        if replicas < 1:
            raise ValueError(f"replicas must be >= 1, got {replicas}")
        self.replicas = replicas
        self._points: List[Tuple[int, str]] = []  # sorted (position, worker)
        self._positions: List[int] = []  # parallel: positions only
        self._workers: Dict[str, List[int]] = {}
        for w in workers:
            self.add(w)

    # -- membership ------------------------------------------------------

    def add(self, worker: str) -> None:
        """Add a worker's virtual nodes; idempotent-hostile by design
        (double-add is a bug worth surfacing, not absorbing)."""
        if worker in self._workers:
            raise ValueError(f"worker {worker!r} already on the ring")
        positions = [
            stable_hash(f"{worker}#{r}") for r in range(self.replicas)
        ]
        self._workers[worker] = positions
        for pos in positions:
            idx = bisect.bisect_left(self._points, (pos, worker))
            self._points.insert(idx, (pos, worker))
        self._positions = [p for p, _ in self._points]

    def remove(self, worker: str) -> bool:
        """Drop a worker from the ring; False when it was not a member."""
        if worker not in self._workers:
            return False
        del self._workers[worker]
        self._points = [pt for pt in self._points if pt[1] != worker]
        self._positions = [p for p, _ in self._points]
        return True

    def __contains__(self, worker: str) -> bool:
        return worker in self._workers

    def __len__(self) -> int:
        return len(self._workers)

    def workers(self) -> List[str]:
        return sorted(self._workers)

    # -- placement -------------------------------------------------------

    def place(self, key: str) -> Optional[str]:
        """The worker owning ``key``: first virtual node clockwise from
        the key's ring position.  None on an empty ring."""
        if not self._points:
            return None
        pos = stable_hash(key)
        idx = bisect.bisect_right(self._positions, pos)
        if idx == len(self._points):
            idx = 0  # wrap: the ring is circular
        return self._points[idx][1]

    def spread(self, keys: Iterable[str]) -> Dict[str, int]:
        """Key count per worker (diagnostics and the uniformity tests)."""
        counts = {w: 0 for w in self._workers}
        for key in keys:
            owner = self.place(key)
            if owner is not None:
                counts[owner] += 1
        return counts
