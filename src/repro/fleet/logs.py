"""Fleet-wide log assembly: one structured event stream from many workers.

Workers log locally (their :class:`~repro.telemetry.logging.EventLog`
outbox collects structured records as plain dicts) and ship those
dicts back to the router exactly like finished spans — piggybacked on
submit/run_load/drain replies, plus periodic ``log_drain`` sweeps.
:class:`FleetLogAssembler` is where the streams meet: each record is
tagged with the worker it came from, retained in one bounded
drop-oldest ring, and exported as the fleet ``/logz`` payload with
level / worker / trace-id filters, so a scatter/gather ticket's
records from three shards read as one correlated stream joined on the
ticket's trace id.

Ordering is deterministic: :meth:`records` sorts by ``(t_ms, worker,
seq)`` — all values that are pure functions of the fleet seed — so two
same-seed runs produce bit-identical log streams no matter how reply
frames interleaved on the wire.

An optional ``sink`` (the OTLP exporter's ``export_logs``) observes
every ingested batch, which is how fleet logs reach a collector
without the router growing a second shipping path.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, List, Optional

from repro.telemetry.logging import level_rank

#: the worker label the router tags its own records with.
ROUTER_WORKER = "router"

DEFAULT_CAPACITY = 50_000


class FleetLogAssembler:
    """Bounded, worker-tagged ring of structured log-record dicts."""

    def __init__(self, capacity: int = DEFAULT_CAPACITY) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = int(capacity)
        self._records: Deque[dict] = deque()
        self.ingested = 0
        self.dropped = 0
        #: optional callable(List[dict]) observing every ingested batch
        #: (wired to :meth:`repro.telemetry.otlp.OTLPExporter.export_logs`).
        self.sink: Optional[Callable[[List[dict]], None]] = None

    def __len__(self) -> int:
        return len(self._records)

    def ingest(self, worker: str, record_dicts) -> int:
        """Absorb one worker's batch of log-record dicts.

        Returns the number of records absorbed.  ``record_dicts`` may
        be None or empty (replies without a ``logs`` key cost nothing).
        """
        if not record_dicts:
            return 0
        tagged = [{**rec, "worker": worker} for rec in record_dicts]
        for rec in tagged:
            if len(self._records) >= self.capacity:
                self._records.popleft()
                self.dropped += 1
            self._records.append(rec)
        self.ingested += len(tagged)
        if self.sink is not None:
            try:
                self.sink(tagged)
            except Exception:
                pass  # egress must never break assembly
        return len(tagged)

    def records(
        self,
        level: Optional[str] = None,
        worker: Optional[str] = None,
        trace_id: Optional[str] = None,
    ) -> List[dict]:
        """Retained records in deterministic timeline order.

        ``level`` is a severity *floor* (``warn`` keeps warn + error);
        ``worker`` and ``trace_id`` are exact matches.
        """
        floor = level_rank(level) if level is not None else 0
        out = [
            r for r in self._records
            if level_rank(str(r.get("level", "info"))) >= floor
            and (worker is None or r.get("worker") == worker)
            and (trace_id is None or r.get("trace_id") == trace_id)
        ]
        out.sort(
            key=lambda r: (
                float(r.get("t_ms") or 0.0),
                str(r.get("worker", "")),
                int(r.get("seq") or 0),
            )
        )
        return out

    def workers(self) -> List[str]:
        """Every worker label seen, router first, then sorted."""
        seen = {str(r.get("worker", "")) for r in self._records}
        rest = sorted(w for w in seen if w != ROUTER_WORKER)
        return ([ROUTER_WORKER] if ROUTER_WORKER in seen else []) + rest

    def to_dict(
        self,
        limit: Optional[int] = None,
        level: Optional[str] = None,
        worker: Optional[str] = None,
        trace_id: Optional[str] = None,
    ) -> dict:
        """The fleet ``/logz`` payload: merged records + accounting."""
        records = self.records(level=level, worker=worker, trace_id=trace_id)
        if limit is not None and limit >= 0:
            records = records[-limit:]
        return {
            "records": records,
            "workers": self.workers(),
            "ingested": self.ingested,
            "dropped": self.dropped,
        }
