"""Sharded multi-process serve fleet: router + shared-nothing workers.

``repro.fleet`` scales the online traversal service past the
one-process ceiling of ``repro.service --serve``.  The topology
(``docs/FLEET.md``):

* **Workers** (:mod:`repro.fleet.worker`) are shared-nothing processes,
  each owning a full :class:`~repro.service.service.TraversalService`
  — its own trees, plans, batchers, telemetry registry, and logical
  clock — driven over a pipe by the wire protocol
  (:mod:`repro.fleet.wire`).
* The **router** (:mod:`repro.fleet.router`) owns the worker pool,
  places sessions on workers by consistent hash
  (:mod:`repro.fleet.hashring`), scatter-slices large single-session
  batches across the live workers and gather-merges the results in
  submission order (:mod:`repro.fleet.slicing`), and fronts the fleet
  with the same pull-based HTTP surface serve mode speaks —
  ``/metrics`` (per-worker-labelled merge), ``/healthz`` (degraded if
  any worker is), ``/statsz`` (strict-JSON fleet snapshot).
* The **pool** (:mod:`repro.fleet.pool`) is the generic pinned-process
  layer under the workers; ``benchmarks/perf --jobs N`` reuses it to
  run benchmark cells in parallel.
* The fleet **self-heals**: worker death trips a router-side breaker,
  the supervisor (:mod:`repro.fleet.supervisor`) respawns the process
  under a seeded backoff/budget policy, and the router replays the
  session catalog from its ledger (:mod:`repro.fleet.ledger`) so the
  rejoined shard serves bit-identical answers.  Fleet-level fault
  injection lives in :mod:`repro.fleet.chaos`.

Determinism: the whole fleet is reproducible from one seed — worker
``w`` derives its chaos/load seeds from ``(fleet seed, w)`` — and
per-query results are bit-identical to a single-process run of the
same streams, because traversal results depend only on (session data,
coordinates), never on batch composition.

CLI::

    PYTHONPATH=src python -m repro.fleet --workers 4
"""

from repro.fleet.chaos import FleetChaos, FleetChaosConfig
from repro.fleet.hashring import HashRing
from repro.fleet.ledger import SessionLedger, data_digest
from repro.fleet.pool import ProcessPool, pin_to_cpu
from repro.fleet.router import FleetConfig, FleetRouter, FleetServer, run_fleet
from repro.fleet.slicing import gather, scatter, scatter_slices
from repro.fleet.supervisor import FleetSupervisor, RestartPolicy
from repro.fleet.wire import WireError, WorkerGone

__all__ = [
    "FleetChaos",
    "FleetChaosConfig",
    "FleetConfig",
    "FleetRouter",
    "FleetServer",
    "FleetSupervisor",
    "HashRing",
    "ProcessPool",
    "RestartPolicy",
    "SessionLedger",
    "WireError",
    "WorkerGone",
    "data_digest",
    "gather",
    "pin_to_cpu",
    "run_fleet",
    "scatter",
    "scatter_slices",
]
