"""Scatter/gather slicing of query batches across fleet workers.

A large single-session batch would serialize on one shard; instead the
router *scatters* it — contiguous, balanced row slices, one per live
worker — executes the slices in parallel on the workers' own copies of
the session tree, and *gathers* the per-slice results back into
submission order.  The idiom follows the HeTr-style distributed
backends (``get_slices`` / gather–scatter axes): slices are expressed
as plain ``slice`` objects over the batch axis so the reassembly is a
pure index computation with no per-row bookkeeping.

Correctness does not depend on the split: per-query traversal results
are functions of (session data, query coordinates) only — batch
composition affects modeled latency, never answers — so a gathered
batch is bit-identical to the same batch executed unsliced.  The
round-trip tests assert exactly that against the brute-force oracle.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, TypeVar

import numpy as np

T = TypeVar("T")


def scatter_slices(n: int, shards: int) -> List[slice]:
    """Balanced contiguous slices covering ``range(n)``.

    The first ``n % shards`` slices get one extra row (sizes differ by
    at most one); shards beyond ``n`` yield empty slices so the caller
    can zip slices with a fixed worker list.  ``n == 0`` is allowed and
    yields all-empty slices.
    """
    if shards < 1:
        raise ValueError(f"shards must be >= 1, got {shards}")
    if n < 0:
        raise ValueError(f"n must be >= 0, got {n}")
    base, extra = divmod(n, shards)
    out: List[slice] = []
    start = 0
    for i in range(shards):
        size = base + (1 if i < extra else 0)
        out.append(slice(start, start + size))
        start += size
    return out


def scatter(coords: np.ndarray, shards: int) -> List[np.ndarray]:
    """Split a (n, d) batch into per-shard row blocks (views)."""
    return [coords[s] for s in scatter_slices(len(coords), shards)]


def gather(parts: Sequence[Sequence[T]]) -> List[T]:
    """Reassemble per-shard result lists into submission order.

    Inverse of :func:`scatter` for any per-row payload: concatenation
    restores the original order because the slices are contiguous and
    emitted in order.
    """
    out: List[T] = []
    for part in parts:
        out.extend(part)
    return out


def gather_arrays(parts: Sequence[Dict[str, np.ndarray]]) -> Dict[str, np.ndarray]:
    """Gather per-shard output-array dicts by key (empty shards skipped)."""
    keys = None
    for part in parts:
        if part:
            keys = list(part)
            break
    if keys is None:
        return {}
    return {
        k: np.concatenate([p[k] for p in parts if p]) for k in keys
    }
