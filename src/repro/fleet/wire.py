"""Fleet wire protocol: typed request/reply frames over process pipes.

Router and workers talk over :class:`multiprocessing.connection`
pipes.  Every exchange is strictly request/reply — the router sends
one frame, the worker answers exactly one frame — so there is no
interleaving to reason about and a missing reply always means the
worker died (surfaced as :class:`WorkerGone`, which trips the
router-side breaker).

Frames are plain dicts with a ``cmd`` / ``ok`` discriminator
(transport pickling is the pipe's; query coordinates and result rows
ride as numpy arrays to stay bit-exact).  Anything destined for an
HTTP surface is converted with :func:`to_jsonable` *before* it crosses
the pipe, so ``/statsz`` aggregation on the router never sees a numpy
scalar.

Commands (see ``docs/FLEET.md`` for the full contract):

===============  =====================================================
``ping``         liveness + worker id echo
``register``     build a session (tree + plan) on this worker
``submit``       execute a coords batch; per-query resolutions back
``run_load``     run N seeded synthetic load ticks locally, keep tickets
``advance``      advance the worker's logical clock
``flush``        force-flush pending batches
``stats``        strict-JSON ServiceStats snapshot
``metrics``      metrics-registry JSON export (None if telemetry off)
``health``       TraversalService.health() payload
``trace_drain``  drain the worker tracer's outbox of finished spans
``log_drain``    drain the worker event log's outbox of records
``profile``      kernel-profiler snapshot (None if profiler off)
``flight``       flight-recorder dumps (None if telemetry off)
``drain``        flush everything, reply with pending depth, then exit
===============  =====================================================

Distributed tracing rides on the existing frames: ``submit`` requests
may carry a ``trace`` key (:meth:`TraceContext.to_wire` payload) that
the worker's tracer adopts for the frame's duration, and ``submit`` /
``run_load`` / ``drain`` replies may carry back a ``spans`` key — the
worker outbox's finished-span dicts — so spans piggyback on traffic
that is flowing anyway.  ``trace_drain`` is the periodic sweep that
catches spans stranded between submits (and the final sweep before a
worker exits), so a ticket rerouted after a worker death still has its
partial spans in the router's assembler.  Structured log records ride
the same way: a ``logs`` key on the same replies carries the worker
event log's outbox, and ``log_drain`` is the matching periodic sweep —
one shipping discipline for both signals.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

import numpy as np

#: every verb a worker understands; the worker loop rejects anything
#: else with a typed error reply instead of dying.
COMMANDS = (
    "ping",
    "register",
    "submit",
    "run_load",
    "advance",
    "flush",
    "stats",
    "metrics",
    "health",
    "trace_drain",
    "log_drain",
    "profile",
    "flight",
    "drain",
)


class WireError(RuntimeError):
    """A worker answered with an error frame (the worker stays up)."""


class WorkerGone(RuntimeError):
    """The pipe broke mid-exchange: the worker process is dead."""

    def __init__(self, worker: str, detail: str = "") -> None:
        super().__init__(
            f"worker {worker!r} is gone" + (f": {detail}" if detail else "")
        )
        self.worker = worker


def request(cmd: str, **payload: Any) -> Dict[str, Any]:
    """Build one request frame (validates the verb at the send site)."""
    if cmd not in COMMANDS:
        raise ValueError(f"unknown wire command {cmd!r}; options: {COMMANDS}")
    frame = {"cmd": cmd}
    frame.update(payload)
    return frame


def ok_reply(**payload: Any) -> Dict[str, Any]:
    frame = {"ok": True}
    frame.update(payload)
    return frame


def error_reply(message: str, **payload: Any) -> Dict[str, Any]:
    frame = {"ok": False, "error": str(message)}
    frame.update(payload)
    return frame


def send_request(conn, worker: str, cmd: str, **payload: Any) -> None:
    """Send one request frame (first half of an exchange)."""
    try:
        conn.send(request(cmd, **payload))
    except (BrokenPipeError, ConnectionResetError, OSError) as exc:
        raise WorkerGone(worker, repr(exc)) from exc


def recv_reply(
    conn, worker: str, timeout: Optional[float] = None
) -> Dict[str, Any]:
    """Receive one reply frame (second half of an exchange); raises
    WorkerGone on a broken pipe or timeout, WireError on an error frame."""
    try:
        if timeout is not None and not conn.poll(timeout):
            raise WorkerGone(worker, f"no reply within {timeout}s")
        reply = conn.recv()
    except (EOFError, BrokenPipeError, ConnectionResetError, OSError) as exc:
        raise WorkerGone(worker, repr(exc)) from exc
    if not isinstance(reply, dict) or "ok" not in reply:
        raise WireError(f"worker {worker!r}: malformed reply {reply!r}")
    if not reply["ok"]:
        raise WireError(f"worker {worker!r}: {reply.get('error', 'unknown')}")
    return reply


def call(
    conn, worker: str, cmd: str, timeout: Optional[float] = None, **payload: Any
) -> Dict[str, Any]:
    """One request/reply exchange; raises WorkerGone on a broken pipe
    and WireError on an error frame (the worker itself stayed up)."""
    send_request(conn, worker, cmd, **payload)
    return recv_reply(conn, worker, timeout=timeout)


def to_jsonable(obj: Any) -> Any:
    """Recursively convert a payload to strict-JSON-safe primitives.

    Numpy scalars/arrays become Python numbers/lists; non-finite floats
    become ``None`` — the fleet-wide extension of the NaN-free contract
    from :mod:`repro.service.stats` (``json.dumps(..., allow_nan=False)``
    must never see a bare ``NaN`` token, even for an empty-worker
    snapshot).
    """
    if isinstance(obj, dict):
        return {str(k): to_jsonable(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [to_jsonable(v) for v in obj]
    if isinstance(obj, np.ndarray):
        return to_jsonable(obj.tolist())
    if isinstance(obj, (bool, np.bool_)):
        return bool(obj)
    if isinstance(obj, (int, np.integer)):
        return int(obj)
    if isinstance(obj, (float, np.floating)):
        f = float(obj)
        return f if np.isfinite(f) else None
    if obj is None or isinstance(obj, str):
        return obj
    return str(obj)


def ticket_payload(ticket) -> Dict[str, Any]:
    """One resolved QueryTicket as a wire frame fragment.

    Result arrays cross the pipe as numpy (bit-exact for the oracle
    audit); error resolutions carry the typed code + message only.
    """
    out: Dict[str, Any] = {
        "ok": bool(ticket.ok),
        "backend": ticket.backend,
        "latency_ms": float(ticket.latency_ms),
        "result": ticket.result,
        "error": None,
    }
    if ticket.error is not None:
        out["error"] = {
            "code": getattr(ticket.error, "code", "error"),
            "message": str(ticket.error),
        }
    return out


def unresolved_payload() -> Dict[str, Any]:
    """Frame fragment for a ticket that never resolved (contract
    violation the audit must be able to count, not crash on)."""
    return {
        "ok": False,
        "backend": None,
        "latency_ms": 0.0,
        "result": None,
        "error": {"code": "lost", "message": "ticket never resolved"},
    }


def make_chaos_payload(chaos) -> Optional[Dict[str, Any]]:
    """ChaosConfig -> plain dict (pipes carry primitives, the worker
    rebuilds the dataclass on its side)."""
    if chaos is None:
        return None
    return {
        "seed": chaos.seed,
        "p_backend_error": chaos.p_backend_error,
        "p_latency_spike": chaos.p_latency_spike,
        "p_stuck_warp": chaos.p_stuck_warp,
        "p_corrupt_stack": chaos.p_corrupt_stack,
        "targets": list(chaos.targets),
    }
