"""Static rope installation (the hand-coded baseline of Section 3).

Prior GPU traversals installed *ropes* into the tree ahead of time:
extra pointers from each node "to the next new node that a point would
visit if its children are not visited" (Fig. 2). That approach is fast
— no stack at all — but works only when there is a single, canonical
traversal order, and it requires a preprocessing pass over the tree;
autoropes exists precisely to generalize it.

We implement the baseline to quantify what autoropes' generality costs.
In the left-biased preorder layout of
:func:`repro.trees.linearize.linearize_left_biased` the rope structure
is particularly clean:

* descending to the first (existing) child means moving to ``n + 1``;
* the rope of ``n`` is ``n + subtree_size(n)`` — the next node in
  preorder once ``n``'s subtree is skipped — with ``-1`` past the end.

Following ropes then reproduces exactly the canonical unguided
traversal order, truncations included.
"""

from __future__ import annotations

import numpy as np

from repro.trees.linearize import LinearTree


def subtree_sizes(tree: LinearTree) -> np.ndarray:
    """Number of nodes in each node's subtree (preorder layout).

    One reverse sweep suffices: in preorder, children have larger ids
    than their parent, so by the time a parent is processed all its
    children's sizes are final.
    """
    n = tree.n_nodes
    sizes = np.ones(n, dtype=np.int64)
    kid_arrays = [tree.children[name] for name in tree.child_names]
    for node in range(n - 1, -1, -1):
        for kids in kid_arrays:
            c = kids[node]
            if c >= 0:
                sizes[node] += sizes[c]
    return sizes


def install_ropes(tree: LinearTree) -> np.ndarray:
    """Compute the canonical-order rope pointer of every node.

    ``rope[n]`` is the node a traversal jumps to when it truncates at
    (or finishes) ``n``; ``-1`` means the traversal is complete. The
    array is also attached to the tree as ``tree.arrays['rope']`` so
    executors can treat it as node payload (it lives in the same child-
    pointer record the cold field group models).
    """
    sizes = subtree_sizes(tree)
    n = tree.n_nodes
    rope = np.arange(n, dtype=np.int64) + sizes
    rope[rope >= n] = -1
    tree.arrays["rope"] = rope
    return rope


def first_children(tree: LinearTree) -> np.ndarray:
    """First existing child of each node (-1 for leaves).

    In the left-biased preorder layout this is ``n + 1`` whenever any
    child exists; computed explicitly so the invariant can be asserted.
    """
    n = tree.n_nodes
    first = np.full(n, -1, dtype=np.int64)
    for name in reversed(tree.child_names):
        kids = tree.children[name]
        first = np.where(kids >= 0, kids, first)
    return first
