"""Tree node storage: structure-of-arrays pools and field groups.

Section 5.2: *"We have found that the optimal way to organize nodes is
to split the original structure into sets of fields based on usage
patterns in the traversal"* — e.g. the transformed Barnes-Hut kernel
first loads a partial node with just position and type, and only loads
the child-index record if the truncation test fails. A
:class:`FieldGroup` names one such partial record and its byte size;
the simulator charges one (possibly coalesced) load per group actually
touched at a visit.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Tuple

import numpy as np


@dataclass(frozen=True)
class FieldGroup:
    """One split-out partial node record.

    ``itemsize`` is the bytes loaded per node when any field in the
    group is read (the unit of the coalescing model).
    """

    name: str
    itemsize: int

    def __post_init__(self) -> None:
        if self.itemsize <= 0:
            raise ValueError(f"field group {self.name!r} has itemsize <= 0")


@dataclass
class RawTree:
    """A freshly-built tree, in builder order, before linearization.

    Attributes
    ----------
    child_names:
        ordered child slots (``('left', 'right')`` for binary trees,
        ``('c0', ..., 'c7')`` for the oct-tree); the order defines the
        canonical (left-biased) linearization.
    children:
        per-slot int64 arrays of child node ids, ``-1`` for null.
    arrays:
        per-node payload arrays (first axis = node id). These are what
        application callbacks read.
    groups:
        the hot/cold field split for memory accounting.
    """

    child_names: Tuple[str, ...]
    children: Dict[str, np.ndarray]
    arrays: Dict[str, np.ndarray] = field(default_factory=dict)
    groups: Tuple[FieldGroup, ...] = ()
    root: int = 0

    @property
    def n_nodes(self) -> int:
        return len(self.children[self.child_names[0]])

    def validate(self) -> "RawTree":
        """Structural sanity checks: child ids in range, single root,
        no node with two parents."""
        n = self.n_nodes
        if set(self.children) != set(self.child_names):
            raise ValueError("children dict keys must equal child_names")
        indegree = np.zeros(n, dtype=np.int64)
        for name in self.child_names:
            arr = self.children[name]
            if len(arr) != n:
                raise ValueError(f"child array {name!r} has wrong length")
            bad = (arr < -1) | (arr >= n)
            if bad.any():
                raise ValueError(f"child array {name!r} has out-of-range ids")
            valid = arr[arr >= 0]
            np.add.at(indegree, valid, 1)
        if not 0 <= self.root < n:
            raise ValueError("root out of range")
        if indegree[self.root] != 0:
            raise ValueError("root has a parent")
        if (indegree > 1).any():
            raise ValueError("a node has multiple parents")
        for name, arr in self.arrays.items():
            if len(arr) != n:
                raise ValueError(f"payload array {name!r} has wrong length")
        return self
