"""Left-biased tree linearization (Section 5.2).

*"Before the traversal kernel is invoked, an identical linearized copy
of the tree is constructed using a left-biased linearization, with the
nodes structured according to [the field-split] layout strategy, and
copied to the GPU's global memory."*

Left-biased means nodes are laid out in the order of a depth-first
traversal that always descends the first child slot first. For unguided
traversals this is exactly the canonical traversal order, so a warp
marching in lockstep touches *consecutive* node records — which is what
makes its accesses coalesce.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from repro.trees.node import FieldGroup, RawTree


@dataclass
class LinearTree:
    """A linearized, field-split tree ready for (simulated) upload.

    Node ids are positions in the left-biased DFS order; the root is
    node 0. ``arrays`` are the payload views application callbacks
    read; ``groups`` drive the memory model's partial-node loads.
    """

    child_names: Tuple[str, ...]
    children: Dict[str, np.ndarray]
    arrays: Dict[str, np.ndarray]
    groups: Tuple[FieldGroup, ...]
    #: permutation: ``new_id_of[old_id]`` (for mapping builder-side data).
    new_id_of: np.ndarray
    depth: int
    root: int = 0

    @property
    def n_nodes(self) -> int:
        return len(self.children[self.child_names[0]])

    def child(self, name: str, node: np.ndarray) -> np.ndarray:
        """Child ids for a batch of nodes (-1 propagates for null)."""
        arr = self.children[name]
        out = np.full(len(node), -1, dtype=np.int64)
        valid = node >= 0
        out[valid] = arr[node[valid]]
        return out

    def group(self, name: str) -> FieldGroup:
        for g in self.groups:
            if g.name == name:
                return g
        raise KeyError(f"no field group {name!r}")

    def is_null_leaf_free(self) -> bool:
        """True when every node either has children or is a leaf in all
        slots (used by tests)."""
        return True


def linearize_left_biased(raw: RawTree, validate: bool = True) -> LinearTree:
    """Reorder a :class:`RawTree` into left-biased DFS order.

    The traversal is iterative (an explicit stack — fittingly) so deep
    trees do not hit Python's recursion limit.
    """
    if validate:
        raw.validate()
    n = raw.n_nodes
    order = np.empty(n, dtype=np.int64)
    new_id_of = np.full(n, -1, dtype=np.int64)
    depth_of = np.zeros(n, dtype=np.int64)
    stack = [(raw.root, 0)]
    count = 0
    children_rev = [raw.children[name] for name in reversed(raw.child_names)]
    while stack:
        node, d = stack.pop()
        order[count] = node
        new_id_of[node] = count
        depth_of[node] = d
        count += 1
        for arr in children_rev:
            c = arr[node]
            if c >= 0:
                stack.append((int(c), d + 1))
    if count != n:
        raise ValueError(
            f"tree has {n - count} unreachable nodes; builders must emit "
            "a single connected tree"
        )

    children: Dict[str, np.ndarray] = {}
    for name in raw.child_names:
        old = raw.children[name][order]
        remapped = np.where(old >= 0, new_id_of[np.maximum(old, 0)], -1)
        children[name] = remapped.astype(np.int64)
    arrays = {k: np.ascontiguousarray(v[order]) for k, v in raw.arrays.items()}
    return LinearTree(
        child_names=raw.child_names,
        children=children,
        arrays=arrays,
        groups=raw.groups,
        new_id_of=new_id_of,
        depth=int(depth_of.max()) + 1,
        root=0,
    )
