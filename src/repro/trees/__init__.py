"""Tree substrates the benchmarks traverse.

The paper's benchmarks build four spatial structures: the Barnes-Hut
oct-tree, two kd-tree variants (a leaf-bucket tree for point
correlation / kNN and an internal-point tree for the NN benchmark), and
a vantage-point tree. All are built host-side, then *linearized* with
the left-biased depth-first layout of Section 5.2 and split into
hot/cold field groups so the simulator can charge partial-node loads.
"""

from repro.trees.node import FieldGroup, RawTree
from repro.trees.linearize import LinearTree, linearize_left_biased
from repro.trees.kdtree import build_kdtree_buckets, build_kdtree_points
from repro.trees.octree import build_octree
from repro.trees.vptree import build_vptree

__all__ = [
    "FieldGroup",
    "RawTree",
    "LinearTree",
    "linearize_left_biased",
    "build_kdtree_buckets",
    "build_kdtree_points",
    "build_octree",
    "build_vptree",
]
