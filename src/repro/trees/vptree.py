"""Vantage-point tree builder (Yianilos, SODA '93).

The VP benchmark is "a variation of nearest neighbor search using a
vantage point tree": each node holds a vantage point and a radius
``tau`` (the median distance of its subset to the vantage point);
points closer than ``tau`` go to the *inside* child, the rest to the
*outside* child. Search descends the side that contains the query
first — a guided, two-call-set traversal — and prunes the other side
with the triangle inequality.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.trees.node import FieldGroup, RawTree

_F4 = 4
_PTR = 4


@dataclass
class VPTreeBuild:
    tree: RawTree
    point_order: np.ndarray


def build_vptree(
    data: np.ndarray, leaf_size: int = 8, max_depth: int = 64
) -> VPTreeBuild:
    """Build a VP-tree with deterministic vantage selection.

    The vantage point of each subset is the point farthest from the
    subset centroid (a common spread heuristic that needs no RNG);
    leaves hold up to ``leaf_size`` points in bucket-contiguous order.
    """
    data = np.asarray(data, dtype=np.float64)
    if data.ndim != 2 or len(data) == 0:
        raise ValueError("data must be a non-empty (n, d) array")
    n, d = data.shape
    if leaf_size < 1:
        raise ValueError("leaf_size must be >= 1")

    point_order = np.arange(n, dtype=np.int64)
    inside, outside = [], []
    vantage, vantage_id, tau = [], [], []
    is_leaf, leaf_start, leaf_count = [], [], []

    def new_node(lo: int, hi: int) -> int:
        idx = len(inside)
        inside.append(-1)
        outside.append(-1)
        vantage.append(np.zeros(d))
        vantage_id.append(-1)
        tau.append(0.0)
        is_leaf.append(False)
        leaf_start.append(lo)
        leaf_count.append(hi - lo)
        return idx

    root = new_node(0, n)
    stack = [(root, 0, n, 0)]
    while stack:
        node, lo, hi, depth = stack.pop()
        count = hi - lo
        if count <= leaf_size or depth >= max_depth:
            is_leaf[node] = True
            continue
        seg = point_order[lo:hi]
        sub = data[seg]
        centroid = sub.mean(axis=0)
        vp_local = int(np.argmax(((sub - centroid) ** 2).sum(axis=1)))
        # Move the vantage point to the front of the segment; it stays
        # stored at this node (not in any child subset).
        seg[0], seg[vp_local] = seg[vp_local], seg[0]
        vp = seg[0]
        rest = seg[1:]
        dist = np.sqrt(((data[rest] - data[vp]) ** 2).sum(axis=1))
        if dist.max() == 0.0:
            is_leaf[node] = True  # all coincident with the vantage point
            continue
        mid = len(rest) // 2
        part = np.argpartition(dist, mid)
        rest_sorted = rest[part]
        point_order[lo + 1 : hi] = rest_sorted
        vantage[node] = data[vp]
        vantage_id[node] = vp
        tau[node] = float(dist[part][mid])
        i_lo, i_hi = lo + 1, lo + 1 + mid
        o_lo, o_hi = lo + 1 + mid, hi
        if i_lo < i_hi:
            c = new_node(i_lo, i_hi)
            inside[node] = c
            stack.append((c, i_lo, i_hi, depth + 1))
        if o_lo < o_hi:
            c = new_node(o_lo, o_hi)
            outside[node] = c
            stack.append((c, o_lo, o_hi, depth + 1))

    groups = (
        FieldGroup("hot", d * _F4 + 2 * _F4),  # vantage coords + tau + flag
        FieldGroup("cold", 2 * _PTR),
        FieldGroup("leafdata", leaf_size * d * _F4),
    )
    tree = RawTree(
        child_names=("inside", "outside"),
        children={
            "inside": np.array(inside, dtype=np.int64),
            "outside": np.array(outside, dtype=np.int64),
        },
        arrays={
            "vantage": np.array(vantage),
            "vantage_id": np.array(vantage_id, dtype=np.int64),
            "tau": np.array(tau, dtype=np.float64),
            "is_leaf": np.array(is_leaf, dtype=bool),
            "leaf_start": np.array(leaf_start, dtype=np.int64),
            "leaf_count": np.array(leaf_count, dtype=np.int64),
        },
        groups=groups,
        root=root,
    ).validate()
    return VPTreeBuild(tree=tree, point_order=point_order)
