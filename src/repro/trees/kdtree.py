"""kd-tree builders.

Two variants, matching the paper's benchmark inventory:

* :func:`build_kdtree_buckets` — a bounding-box kd-tree with points
  stored in leaf buckets, used by Point Correlation (after Moore et
  al.'s n-point correlation trees) and by the kNN benchmark.
* :func:`build_kdtree_points` — a classic kd-tree storing one data
  point per *internal* node, "a variation of nearest neighbor search
  with a different implementation of the kd-tree structure" (the NN
  benchmark).

Builders are deterministic (median splits, ties broken by index) and
iterative, so input size is bounded by memory rather than Python's
recursion limit.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.trees.node import FieldGroup, RawTree

_F4 = 4  # simulated sizeof(float)
_PTR = 4  # simulated child index size (int32 on the device)


@dataclass
class BucketTreeBuild:
    """Result of a leaf-bucket build: the tree plus the point order.

    ``point_order[i]`` is the original index of the i-th point in
    bucket-contiguous storage; leaf nodes reference ``[leaf_start,
    leaf_start + leaf_count)`` ranges of that storage.
    """

    tree: RawTree
    point_order: np.ndarray


def build_kdtree_buckets(
    data: np.ndarray, leaf_size: int = 8, max_depth: int = 64
) -> BucketTreeBuild:
    """Median-split bounding-box kd-tree with leaf buckets.

    Splits on the widest dimension of each node's bounding box at the
    median coordinate, which keeps the tree balanced for the clustered
    inputs the evaluation uses.
    """
    data = np.asarray(data, dtype=np.float64)
    if data.ndim != 2 or len(data) == 0:
        raise ValueError("data must be a non-empty (n, d) array")
    n, d = data.shape
    if leaf_size < 1:
        raise ValueError("leaf_size must be >= 1")

    point_order = np.arange(n, dtype=np.int64)
    left, right = [], []
    bbox_min, bbox_max = [], []
    is_leaf, leaf_start, leaf_count = [], [], []
    split_dim, split_val = [], []

    def new_node(lo: int, hi: int) -> int:
        idx = len(left)
        sub = data[point_order[lo:hi]]
        bbox_min.append(sub.min(axis=0))
        bbox_max.append(sub.max(axis=0))
        left.append(-1)
        right.append(-1)
        is_leaf.append(False)
        leaf_start.append(lo)
        leaf_count.append(hi - lo)
        split_dim.append(-1)
        split_val.append(0.0)
        return idx

    root = new_node(0, n)
    stack = [(root, 0, n, 0)]
    while stack:
        node, lo, hi, depth = stack.pop()
        count = hi - lo
        widths = bbox_max[node] - bbox_min[node]
        if count <= leaf_size or depth >= max_depth or widths.max() == 0.0:
            is_leaf[node] = True
            continue
        dim = int(np.argmax(widths))
        seg = point_order[lo:hi]
        mid = count // 2
        # argpartition gives a median split; ties are fine because both
        # halves stay non-empty (count > leaf_size >= 1 implies mid >= 1).
        part = np.argpartition(data[seg, dim], mid)
        point_order[lo:hi] = seg[part]
        split_dim[node] = dim
        split_val[node] = float(data[point_order[lo + mid], dim])
        l = new_node(lo, lo + mid)
        r = new_node(lo + mid, hi)
        left[node], right[node] = l, r
        stack.append((l, lo, lo + mid, depth + 1))
        stack.append((r, lo + mid, hi, depth + 1))

    groups = (
        # bbox + leaf flag + split info: loaded by the truncation test.
        FieldGroup("hot", 2 * d * _F4 + 3 * _F4),
        # child indices: loaded only when descending.
        FieldGroup("cold", 2 * _PTR),
        # leaf bucket payload: loaded by leaf updates.
        FieldGroup("leafdata", leaf_size * d * _F4),
    )
    tree = RawTree(
        child_names=("left", "right"),
        children={
            "left": np.array(left, dtype=np.int64),
            "right": np.array(right, dtype=np.int64),
        },
        arrays={
            "bbox_min": np.array(bbox_min),
            "bbox_max": np.array(bbox_max),
            "is_leaf": np.array(is_leaf, dtype=bool),
            "leaf_start": np.array(leaf_start, dtype=np.int64),
            "leaf_count": np.array(leaf_count, dtype=np.int64),
            "split_dim": np.array(split_dim, dtype=np.int64),
            "split_val": np.array(split_val, dtype=np.float64),
        },
        groups=groups,
    ).validate()
    return BucketTreeBuild(tree=tree, point_order=point_order)


def build_kdtree_points(data: np.ndarray, max_depth: int = 64) -> RawTree:
    """Classic kd-tree: one point per node, split dimension cycles with
    depth, the median point becomes the node."""
    data = np.asarray(data, dtype=np.float64)
    if data.ndim != 2 or len(data) == 0:
        raise ValueError("data must be a non-empty (n, d) array")
    n, d = data.shape

    point = np.zeros((n, d), dtype=np.float64)
    point_id = np.full(n, -1, dtype=np.int64)
    node_split_dim = np.zeros(n, dtype=np.int64)
    left = np.full(n, -1, dtype=np.int64)
    right = np.full(n, -1, dtype=np.int64)

    next_node = [0]

    def build(ids: np.ndarray, depth: int) -> int:
        node = next_node[0]
        next_node[0] += 1
        dim = depth % d
        mid = len(ids) // 2
        order = np.argsort(data[ids, dim], kind="stable")
        ids = ids[order]
        chosen = ids[mid]
        point[node] = data[chosen]
        point_id[node] = chosen
        node_split_dim[node] = dim
        lo, hi = ids[:mid], ids[mid + 1 :]
        if len(lo):
            left[node] = build(lo, depth + 1)
        if len(hi):
            right[node] = build(hi, depth + 1)
        return node

    import sys

    old_limit = sys.getrecursionlimit()
    sys.setrecursionlimit(max(old_limit, 2 * max_depth + n.bit_length() * 64 + 1000))
    try:
        build(np.arange(n, dtype=np.int64), 0)
    finally:
        sys.setrecursionlimit(old_limit)

    groups = (
        FieldGroup("hot", d * _F4 + 2 * _F4),  # point coords + split dim
        FieldGroup("cold", 2 * _PTR),
    )
    return RawTree(
        child_names=("left", "right"),
        children={"left": left, "right": right},
        arrays={
            "point": point,
            "point_id": point_id,
            "split_dim": node_split_dim,
        },
        groups=groups,
    ).validate()
