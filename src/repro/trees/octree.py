"""Barnes-Hut oct-tree builder.

Builds the spatial oct-tree over 3-D bodies and computes per-node
center of mass and total mass bottom-up, as the Lonestar Barnes-Hut
benchmark (the paper's source for BH) does. The traversal's truncation
test follows Fig. 9: a cell is "far enough" when the squared distance
from the body to the cell's center of mass exceeds ``dsq``, a
traversal-variant argument that starts at ``(diameter^2 / theta^2)``
and is quartered at every level (each recursion passes ``dsq * 0.25``).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.trees.node import FieldGroup, RawTree

_F4 = 4
_PTR = 4

LEAF = 1
INTERNAL = 0

_CHILD_NAMES = tuple(f"c{i}" for i in range(8))


@dataclass
class OctreeBuild:
    """Tree + bucket-contiguous body order + root cell geometry."""

    tree: RawTree
    body_order: np.ndarray
    root_half_width: float

    @property
    def root_diameter(self) -> float:
        return 2.0 * self.root_half_width


def build_octree(
    pos: np.ndarray,
    mass: np.ndarray,
    leaf_size: int = 1,
    max_depth: int = 64,
) -> OctreeBuild:
    """Build the BH oct-tree by recursive octant subdivision.

    Bodies are reordered into leaf-contiguous storage (``body_order``),
    so leaves reference ``[body_start, body_start + body_count)``.
    Coincident bodies terminate subdivision via ``max_depth``.
    """
    pos = np.asarray(pos, dtype=np.float64)
    mass = np.asarray(mass, dtype=np.float64)
    if pos.ndim != 2 or pos.shape[1] != 3 or len(pos) == 0:
        raise ValueError("pos must be a non-empty (n, 3) array")
    if mass.shape != (len(pos),):
        raise ValueError("mass must be (n,)")
    if leaf_size < 1:
        raise ValueError("leaf_size must be >= 1")
    n = len(pos)

    center0 = (pos.min(axis=0) + pos.max(axis=0)) / 2.0
    half0 = float((pos.max(axis=0) - pos.min(axis=0)).max() / 2.0)
    if half0 == 0.0:
        half0 = 1.0  # all bodies coincident: one leaf under a unit cell

    body_order = np.arange(n, dtype=np.int64)
    children = [[] for _ in range(8)]
    com, total_mass, node_type = [], [], []
    half_width, body_start, body_count = [], [], []

    def new_node(lo: int, hi: int, half: float) -> int:
        idx = len(node_type)
        for c in children:
            c.append(-1)
        sub = body_order[lo:hi]
        m = mass[sub]
        w = m.sum()
        com.append((pos[sub] * m[:, None]).sum(axis=0) / w)
        total_mass.append(w)
        node_type.append(LEAF)
        half_width.append(half)
        body_start.append(lo)
        body_count.append(hi - lo)
        return idx

    root = new_node(0, n, half0)
    stack = [(root, 0, n, center0, half0, 0)]
    while stack:
        node, lo, hi, center, half, depth = stack.pop()
        count = hi - lo
        if count <= leaf_size or depth >= max_depth:
            continue
        node_type[node] = INTERNAL
        seg = body_order[lo:hi]
        p = pos[seg]
        octant = (
            (p[:, 0] >= center[0]).astype(np.int64)
            | ((p[:, 1] >= center[1]).astype(np.int64) << 1)
            | ((p[:, 2] >= center[2]).astype(np.int64) << 2)
        )
        order = np.argsort(octant, kind="stable")
        body_order[lo:hi] = seg[order]
        octant_sorted = octant[order]
        bounds = np.searchsorted(octant_sorted, np.arange(9))
        for o in range(8):
            o_lo, o_hi = lo + bounds[o], lo + bounds[o + 1]
            if o_lo == o_hi:
                continue
            offs = np.array(
                [
                    half / 2 if o & 1 else -half / 2,
                    half / 2 if o & 2 else -half / 2,
                    half / 2 if o & 4 else -half / 2,
                ]
            )
            child = new_node(o_lo, o_hi, half / 2)
            children[o][node] = child
            stack.append((child, o_lo, o_hi, center + offs, half / 2, depth + 1))

    groups = (
        # position vector + type (+ mass): the Fig. 9b "partial node".
        FieldGroup("hot", 3 * _F4 + _F4 + _F4),
        # child indices record (Fig. 9b nodes1).
        FieldGroup("cold", 8 * _PTR),
        # leaf body payload.
        FieldGroup("leafdata", leaf_size * 4 * _F4),
    )
    tree = RawTree(
        child_names=_CHILD_NAMES,
        children={
            name: np.array(children[i], dtype=np.int64)
            for i, name in enumerate(_CHILD_NAMES)
        },
        arrays={
            "com": np.array(com),
            "mass": np.array(total_mass),
            "type": np.array(node_type, dtype=np.int64),
            "half_width": np.array(half_width),
            "body_start": np.array(body_start, dtype=np.int64),
            "body_count": np.array(body_count, dtype=np.int64),
        },
        groups=groups,
        root=root,
    ).validate()
    return OctreeBuild(tree=tree, body_order=body_order, root_half_width=half0)
