"""Multi-timestep Barnes-Hut simulation (the paper's BH workload).

Section 6.1.2: the BH inputs are "ran ... for five timesteps" — each
timestep rebuilds the oct-tree over the moved bodies, re-sorts them
(Section 4.4), runs the force traversal on the GPU, and integrates with
a leapfrog (kick-drift) scheme. This module packages that loop as a
library API so experiments and examples share one implementation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.apps.barneshut import build_barneshut_app
from repro.core.pipeline import CompiledTraversal, TransformPipeline
from repro.gpusim.device import DeviceConfig, TESLA_C2070
from repro.gpusim.executors import LockstepExecutor, TraversalLaunch
from repro.gpusim.executors.common import LaunchResult
from repro.gpusim.stack import RopeStackLayout
from repro.points.datasets import BodySet
from repro.points.sorting import morton_order


@dataclass
class StepResult:
    """One timestep's measurements."""

    result: LaunchResult
    kinetic_energy: float
    momentum: np.ndarray

    @property
    def traversal_ms(self) -> float:
        return self.result.time_ms


@dataclass
class NBodySimulation:
    """A leapfrog Barnes-Hut integrator over the simulated GPU.

    Each :meth:`step` call is one paper-style timestep: sort, rebuild,
    traverse (lockstep, shared-memory stack), integrate. State mutates
    in place; ``history`` accumulates per-step measurements.
    """

    bodies: BodySet
    theta: float = 0.5
    eps: float = 0.05
    dt: float = 0.025
    leaf_size: int = 4
    device: DeviceConfig = TESLA_C2070
    sort_points: bool = True
    history: List[StepResult] = field(default_factory=list)
    _pipeline: TransformPipeline = field(default_factory=TransformPipeline)

    def accelerations(self) -> (np.ndarray, LaunchResult):
        """One force traversal over the current body state; returns
        accelerations in original body order plus the launch result."""
        order = (
            morton_order(self.bodies.pos)
            if self.sort_points
            else np.arange(self.bodies.n)
        )
        app = build_barneshut_app(
            self.bodies,
            order,
            theta=self.theta,
            eps=self.eps,
            leaf_size=self.leaf_size,
        )
        compiled = self._pipeline.compile(app.spec)
        launch = TraversalLaunch(
            kernel=compiled.lockstep,
            tree=app.tree,
            ctx=app.make_ctx(),
            n_points=app.n_points,
            device=self.device,
            stack_layout=RopeStackLayout.SHARED,
        )
        result = LockstepExecutor(launch).run()
        acc = np.empty_like(launch.ctx.out["acc"])
        acc[order] = launch.ctx.out["acc"]
        return acc, result

    def step(self) -> StepResult:
        """Advance one leapfrog timestep (kick-drift)."""
        acc, result = self.accelerations()
        vel = self.bodies.vel + self.dt * acc
        pos = self.bodies.pos + self.dt * vel
        self.bodies = BodySet(
            name=self.bodies.name, pos=pos, vel=vel, mass=self.bodies.mass
        )
        ke = 0.5 * float((self.bodies.mass * (vel**2).sum(axis=1)).sum())
        mom = (vel * self.bodies.mass[:, None]).sum(axis=0)
        out = StepResult(result=result, kinetic_energy=ke, momentum=mom)
        self.history.append(out)
        return out

    def run(self, steps: int = 5) -> List[StepResult]:
        """The paper's five-timestep run (configurable)."""
        if steps < 1:
            raise ValueError("steps must be >= 1")
        return [self.step() for _ in range(steps)]

    @property
    def total_traversal_ms(self) -> float:
        return sum(s.traversal_ms for s in self.history)
