"""k-Nearest Neighbors (kNN) over a leaf-bucket kd-tree.

A **guided** traversal with two call sets (Fig. 5): at every interior
node the search descends the child on the query's side of the splitting
plane first, then the other — pruning when the node's bounding box
cannot contain anything closer than the current k-th best. The call
sets are annotated semantically equivalent (Section 4.3): visiting the
children in the "wrong" order can only delay pruning, never change the
k nearest neighbors.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.apps.base import QuerySet, TraversalApp, chunked_sq_dists, sq_dist_rows
from repro.core.annotations import Annotation
from repro.core.ir import (
    ChildRef,
    CondRef,
    If,
    Recurse,
    Return,
    Seq,
    TraversalSpec,
    Update,
    UpdateRef,
)
from repro.trees.kdtree import build_kdtree_buckets
from repro.trees.linearize import linearize_left_biased


def _cannot_contain_better(ctx, node, pt, args):
    """Prune: min distance from query to the node's bbox is no better
    than the current k-th best."""
    tree, q = ctx.tree, ctx.points
    lo = tree.arrays["bbox_min"][node]
    hi = tree.arrays["bbox_max"][node]
    p = q.coords[pt]
    clamped = np.clip(p, lo, hi)
    worst = ctx.out["knn_dist"][pt, -1]
    return sq_dist_rows(p, clamped) >= worst


def _is_leaf(ctx, node, pt, args):
    return ctx.tree.arrays["is_leaf"][node]


def _closer_to_left(ctx, node, pt, args):
    """Call-set selector: is the query on the left of the split plane?"""
    tree, q = ctx.tree, ctx.points
    dim = tree.arrays["split_dim"][node]
    val = tree.arrays["split_val"][node]
    coord = q.coords[pt, np.maximum(dim, 0)]
    return coord < val


def _make_update_knn(bucket_coords: np.ndarray, bucket_ids: np.ndarray, leaf_size: int):
    def update_knn(ctx, node, pt, args):
        tree, q = ctx.tree, ctx.points
        start = tree.arrays["leaf_start"][node]
        count = tree.arrays["leaf_count"][node]
        p = q.coords[pt]
        mine = q.orig_ids[pt]
        dists = ctx.out["knn_dist"]
        ids = ctx.out["knn_id"]
        for slot in range(leaf_size):
            valid = slot < count
            cand = np.minimum(start + slot, len(bucket_coords) - 1)
            d = sq_dist_rows(p, bucket_coords[cand])
            better = valid & (d < dists[pt, -1]) & (bucket_ids[cand] != mine)
            if not better.any():
                continue
            rows = pt[better]
            dists[rows, -1] = d[better]
            ids[rows, -1] = bucket_ids[cand[better]]
            order = np.argsort(dists[rows], axis=1, kind="stable")
            dists[rows] = np.take_along_axis(dists[rows], order, axis=1)
            ids[rows] = np.take_along_axis(ids[rows], order, axis=1)

    return update_knn


def build_knn_app(
    data: np.ndarray,
    order: np.ndarray,
    k: int = 4,
    leaf_size: int = 8,
    name: str = "knn",
) -> TraversalApp:
    """Assemble the kNN benchmark (k nearest among ``data``, excluding
    the query itself)."""
    data = np.asarray(data, dtype=np.float64)
    if k < 1 or k >= len(data):
        raise ValueError("k must be in [1, n)")
    build = build_kdtree_buckets(data, leaf_size=leaf_size)
    tree = linearize_left_biased(build.tree)
    bucket_coords = np.ascontiguousarray(data[build.point_order])
    bucket_ids = build.point_order.copy()
    queries = QuerySet.from_order(data, order)
    dim = data.shape[1]

    body = Seq(
        If(CondRef("cannot_contain_better", reads=("hot",), cost=2.0 * dim), Return()),
        If(
            CondRef("is_leaf", point_dependent=False, reads=("hot",), cost=1.0),
            Seq(
                Update(
                    UpdateRef("update_knn", reads=("leafdata",), cost=3.0 * dim * leaf_size)
                ),
                Return(),
            ),
            If(
                CondRef("closer_to_left", reads=("hot",), cost=2.0),
                Seq(Recurse(ChildRef("left")), Recurse(ChildRef("right"))),
                Seq(Recurse(ChildRef("right")), Recurse(ChildRef("left"))),
            ),
        ),
    )
    spec = TraversalSpec(
        name=name,
        body=body,
        conditions={
            "cannot_contain_better": _cannot_contain_better,
            "is_leaf": _is_leaf,
            "closer_to_left": _closer_to_left,
        },
        updates={"update_knn": _make_update_knn(bucket_coords, bucket_ids, leaf_size)},
        annotations=frozenset({Annotation.CALLSETS_EQUIVALENT}),
    )

    n = len(order)

    def make_out() -> Dict[str, np.ndarray]:
        return {
            "knn_dist": np.full((n, k), np.inf, dtype=np.float64),
            "knn_id": np.full((n, k), -1, dtype=np.int64),
        }

    def brute_force() -> Dict[str, np.ndarray]:
        d = chunked_sq_dists(queries.coords, data)
        d[np.arange(n), queries.orig_ids] = np.inf
        idx = np.argpartition(d, k - 1, axis=1)[:, :k]
        dd = np.take_along_axis(d, idx, axis=1)
        order_k = np.argsort(dd, axis=1, kind="stable")
        return {
            "knn_dist": np.take_along_axis(dd, order_k, axis=1),
            "knn_id": np.take_along_axis(idx, order_k, axis=1).astype(np.int64),
        }

    def check(got: Dict[str, np.ndarray], want: Dict[str, np.ndarray]) -> None:
        # Distances are the invariant (ids may differ under ties).
        np.testing.assert_allclose(
            got["knn_dist"], want["knn_dist"], rtol=1e-9, atol=1e-12
        )

    return TraversalApp(
        name=name,
        spec=spec,
        tree=tree,
        queries=queries,
        make_out=make_out,
        params={"k": float(k)},
        brute_force=brute_force,
        check=check,
        expect_guided=True,
        visit_cost_scale=1.2,
        extras={"bucket_coords": bucket_coords, "bucket_ids": bucket_ids},
    )
