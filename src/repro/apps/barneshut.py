"""Barnes-Hut (BH): n-body gravitational force computation.

Each body traverses the oct-tree; a cell far enough away (squared
distance to its center of mass at least ``dsq``, the traversal-variant
argument quartered per level, Fig. 9) — or a leaf — contributes a force
term and truncates; otherwise the traversal descends into all eight
children in canonical order. **Unguided**: one call set of eight calls.

The oracle is an independent, straight-line implementation of the same
algorithm (so results must agree to summation order), plus a physics
helper comparing against the exact O(n^2) sum within the opening-angle
error budget.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.apps.base import QuerySet, TraversalApp
from repro.core.ir import (
    ArgDecl,
    ChildRef,
    CondRef,
    If,
    Recurse,
    Return,
    Seq,
    TraversalSpec,
    Update,
    UpdateRef,
)
from repro.points.datasets import BodySet
from repro.trees.linearize import LinearTree, linearize_left_biased
from repro.trees.octree import LEAF, build_octree

_CHILDREN = tuple(f"c{i}" for i in range(8))


def _approximate(ctx, node, pt, args):
    """Fig. 9a's condition, inverted to guard the truncating arm:
    far enough for the COM approximation, or a leaf."""
    tree, q = ctx.tree, ctx.points
    com = tree.arrays["com"][node]
    p = q.coords[pt]
    d_sq = ((p - com) ** 2).sum(axis=1)
    far = d_sq >= args["dsq"]
    return far | (tree.arrays["type"][node] == LEAF)


def _quarter_dsq(ctx, node, pt, args):
    return args["dsq"] * 0.25


def _make_add_force(
    body_coords: np.ndarray, body_mass: np.ndarray, body_ids: np.ndarray, leaf_size: int
):
    def add_force(ctx, node, pt, args):
        tree, q = ctx.tree, ctx.points
        eps_sq = ctx.params["eps_sq"]
        p = q.coords[pt]
        mine = q.orig_ids[pt]
        acc = np.zeros((len(node), 3))
        is_leaf = tree.arrays["type"][node] == LEAF
        # Interior (far-enough) cells: one COM term.
        com = tree.arrays["com"][node]
        m = tree.arrays["mass"][node]
        dr = com - p
        d_sq = (dr * dr).sum(axis=1) + eps_sq
        inv = m / (d_sq * np.sqrt(d_sq))
        acc += np.where(is_leaf[:, None], 0.0, dr * inv[:, None])
        # Leaves: exact per-body terms, excluding self-interaction.
        start = tree.arrays["body_start"][node]
        count = tree.arrays["body_count"][node]
        for slot in range(leaf_size):
            valid = is_leaf & (slot < count)
            cand = np.minimum(start + slot, len(body_coords) - 1)
            dr = body_coords[cand] - p
            d_sq = (dr * dr).sum(axis=1) + eps_sq
            inv = body_mass[cand] / (d_sq * np.sqrt(d_sq))
            use = valid & (body_ids[cand] != mine)
            acc += np.where(use[:, None], dr * inv[:, None], 0.0)
        np.add.at(ctx.out["acc"], pt, acc)

    return add_force


def barneshut_oracle(
    tree: LinearTree,
    queries: QuerySet,
    dsq0: float,
    eps_sq: float,
    body_coords: np.ndarray,
    body_mass: np.ndarray,
    body_ids: np.ndarray,
) -> Dict[str, np.ndarray]:
    """Independent per-point stack walker for the same BH algorithm."""
    com = tree.arrays["com"]
    mass = tree.arrays["mass"]
    ntype = tree.arrays["type"]
    start = tree.arrays["body_start"]
    count = tree.arrays["body_count"]
    kids = [tree.children[c] for c in _CHILDREN]
    acc = np.zeros((queries.n, 3))
    for i in range(queries.n):
        p = queries.coords[i]
        mine = queries.orig_ids[i]
        stack = [(tree.root, dsq0)]
        while stack:
            node, dsq = stack.pop()
            dr = com[node] - p
            d_sq = float((dr * dr).sum())
            if d_sq >= dsq or ntype[node] == LEAF:
                if ntype[node] == LEAF:
                    for s in range(int(count[node])):
                        b = int(start[node]) + s
                        if body_ids[b] == mine:
                            continue
                        drb = body_coords[b] - p
                        db = float((drb * drb).sum()) + eps_sq
                        acc[i] += body_mass[b] * drb / (db * np.sqrt(db))
                else:
                    db = d_sq + eps_sq
                    acc[i] += mass[node] * dr / (db * np.sqrt(db))
            else:
                for kid in reversed(kids):
                    c = kid[node]
                    if c >= 0:
                        stack.append((int(c), dsq * 0.25))
    return {"acc": acc}


def exact_forces(queries: QuerySet, pos: np.ndarray, mass: np.ndarray, eps_sq: float):
    """O(n^2) direct sum (for physics sanity checks)."""
    acc = np.zeros((queries.n, 3))
    for i in range(queries.n):
        dr = pos - queries.coords[i]
        d_sq = (dr * dr).sum(axis=1) + eps_sq
        w = mass / (d_sq * np.sqrt(d_sq))
        w[queries.orig_ids[i]] = 0.0
        acc[i] = (dr * w[:, None]).sum(axis=0)
    return {"acc": acc}


def build_barneshut_app(
    bodies: BodySet,
    order: np.ndarray,
    theta: float = 0.5,
    eps: float = 0.05,
    leaf_size: int = 1,
    name: str = "bh",
) -> TraversalApp:
    """Assemble the BH benchmark: oct-tree over all bodies, each body
    traversing in ``order``."""
    build = build_octree(bodies.pos, bodies.mass, leaf_size=leaf_size)
    tree = linearize_left_biased(build.tree)
    body_coords = np.ascontiguousarray(bodies.pos[build.body_order])
    body_mass = bodies.mass[build.body_order].copy()
    body_ids = build.body_order.copy()
    queries = QuerySet.from_order(bodies.pos, order)
    dsq0 = (build.root_diameter / theta) ** 2

    body = Seq(
        If(
            CondRef("approximate", reads=("hot",), cost=8.0),
            Seq(
                Update(UpdateRef("add_force", reads=("leafdata",), cost=16.0)),
                Return(),
            ),
            Seq(*[Recurse(ChildRef(c)) for c in _CHILDREN]),
        )
    )
    spec = TraversalSpec(
        name=name,
        body=body,
        args=(ArgDecl("dsq", dsq0, update="quarter_dsq"),),
        conditions={"approximate": _approximate},
        updates={"add_force": _make_add_force(body_coords, body_mass, body_ids, leaf_size)},
        arg_rules={"quarter_dsq": _quarter_dsq},
    )

    params = {"eps_sq": float(eps) ** 2, "theta": float(theta)}
    n = len(order)

    def make_out() -> Dict[str, np.ndarray]:
        return {"acc": np.zeros((n, 3), dtype=np.float64)}

    def brute_force() -> Dict[str, np.ndarray]:
        return barneshut_oracle(
            tree, queries, dsq0, params["eps_sq"], body_coords, body_mass, body_ids
        )

    def check(got: Dict[str, np.ndarray], want: Dict[str, np.ndarray]) -> None:
        np.testing.assert_allclose(got["acc"], want["acc"], rtol=1e-9, atol=1e-12)

    return TraversalApp(
        name=name,
        spec=spec,
        tree=tree,
        queries=queries,
        make_out=make_out,
        params=params,
        brute_force=brute_force,
        check=check,
        expect_guided=False,
        visit_cost_scale=1.6,
        extras={
            "body_coords": body_coords,
            "body_mass": body_mass,
            "body_ids": body_ids,
            "dsq0": np.array([dsq0]),
        },
    )
