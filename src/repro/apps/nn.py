"""Nearest Neighbor (NN) over an internal-point kd-tree.

"A variation of nearest neighbor search with a different implementation
of the kd-tree structure": every node stores one data point (the median
along the cycling split dimension), so the candidate update happens at
every visited node rather than only at leaves. **Guided**, two call
sets (near side first), annotated equivalent.

The pruning test is entry-style (checked at the child, not before the
call) so the function stays pseudo-tail-recursive: each node carries
its subtree bounding box, computed bottom-up after the build.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.apps.base import QuerySet, TraversalApp, chunked_sq_dists, sq_dist_rows
from repro.core.annotations import Annotation
from repro.core.ir import (
    ChildRef,
    CondRef,
    If,
    Recurse,
    Return,
    Seq,
    TraversalSpec,
    Update,
    UpdateRef,
)
from repro.trees.kdtree import build_kdtree_points
from repro.trees.node import FieldGroup, RawTree
from repro.trees.linearize import linearize_left_biased

_F4 = 4


def add_subtree_bboxes(raw: RawTree) -> None:
    """Attach ``bbox_min``/``bbox_max`` arrays covering each subtree.

    ``build_kdtree_points`` assigns node ids in preorder, so children
    always have larger ids than their parent and one reverse sweep
    suffices.
    """
    n = raw.n_nodes
    d = raw.arrays["point"].shape[1]
    lo = raw.arrays["point"].copy()
    hi = raw.arrays["point"].copy()
    left, right = raw.children["left"], raw.children["right"]
    for node in range(n - 1, -1, -1):
        for c in (left[node], right[node]):
            if c >= 0:
                np.minimum(lo[node], lo[c], out=lo[node])
                np.maximum(hi[node], hi[c], out=hi[node])
    raw.arrays["bbox_min"] = lo
    raw.arrays["bbox_max"] = hi
    raw.groups = (
        FieldGroup("hot", d * _F4 + 2 * _F4 + 2 * d * _F4),
        FieldGroup("cold", 2 * _F4),
    )


def _cannot_contain_better(ctx, node, pt, args):
    tree, q = ctx.tree, ctx.points
    lo = tree.arrays["bbox_min"][node]
    hi = tree.arrays["bbox_max"][node]
    p = q.coords[pt]
    clamped = np.clip(p, lo, hi)
    return sq_dist_rows(p, clamped) >= ctx.out["nn_dist"][pt]


def _closer_to_left(ctx, node, pt, args):
    tree, q = ctx.tree, ctx.points
    dim = tree.arrays["split_dim"][node]
    val = tree.arrays["point"][node, dim]
    return q.coords[pt, dim] < val


def _update_node_point(ctx, node, pt, args):
    tree, q = ctx.tree, ctx.points
    cand_id = tree.arrays["point_id"][node]
    d = sq_dist_rows(q.coords[pt], tree.arrays["point"][node])
    better = (d < ctx.out["nn_dist"][pt]) & (cand_id != q.orig_ids[pt])
    rows = pt[better]
    ctx.out["nn_dist"][rows] = d[better]
    ctx.out["nn_id"][rows] = cand_id[better]


def build_nn_app(
    data: np.ndarray,
    order: np.ndarray,
    name: str = "nn",
) -> TraversalApp:
    """Assemble the NN benchmark (nearest other point in ``data``)."""
    data = np.asarray(data, dtype=np.float64)
    raw = build_kdtree_points(data)
    add_subtree_bboxes(raw)
    tree = linearize_left_biased(raw)
    queries = QuerySet.from_order(data, order)
    dim = data.shape[1]

    body = Seq(
        If(CondRef("cannot_contain_better", reads=("hot",), cost=2.0 * dim), Return()),
        Update(UpdateRef("update_node_point", reads=("hot",), cost=2.0 * dim)),
        If(
            CondRef("closer_to_left", reads=("hot",), cost=2.0),
            Seq(Recurse(ChildRef("left")), Recurse(ChildRef("right"))),
            Seq(Recurse(ChildRef("right")), Recurse(ChildRef("left"))),
        ),
    )
    spec = TraversalSpec(
        name=name,
        body=body,
        conditions={
            "cannot_contain_better": _cannot_contain_better,
            "closer_to_left": _closer_to_left,
        },
        updates={"update_node_point": _update_node_point},
        annotations=frozenset({Annotation.CALLSETS_EQUIVALENT}),
    )

    n = len(order)

    def make_out() -> Dict[str, np.ndarray]:
        return {
            "nn_dist": np.full(n, np.inf, dtype=np.float64),
            "nn_id": np.full(n, -1, dtype=np.int64),
        }

    def brute_force() -> Dict[str, np.ndarray]:
        d = chunked_sq_dists(queries.coords, data)
        d[np.arange(n), queries.orig_ids] = np.inf
        nn = d.argmin(axis=1)
        return {
            "nn_dist": d[np.arange(n), nn],
            "nn_id": nn.astype(np.int64),
        }

    def check(got: Dict[str, np.ndarray], want: Dict[str, np.ndarray]) -> None:
        np.testing.assert_allclose(
            got["nn_dist"], want["nn_dist"], rtol=1e-9, atol=1e-12
        )

    return TraversalApp(
        name=name,
        spec=spec,
        tree=tree,
        queries=queries,
        make_out=make_out,
        params={},
        brute_force=brute_force,
        check=check,
        expect_guided=True,
        visit_cost_scale=1.0,
    )
