"""Vantage-Point tree nearest neighbor (VP).

Nearest-neighbor search over a vantage-point tree (Yianilos '93):
internal nodes hold a vantage point and median radius ``tau``; the
search considers the vantage point as a candidate, descends the side
containing the query first (inside iff ``dist(q, vantage) < tau``), and
prunes with a covering-ball bound — each node stores the radius of the
ball (around its vantage / leaf centroid) containing its whole subtree,
so the prune is an entry check and the traversal stays
pseudo-tail-recursive. **Guided**, two call sets, annotated equivalent.

VP works in *metric* space, so distances here are true (not squared)
Euclidean distances.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.apps.base import QuerySet, TraversalApp, chunked_sq_dists, sq_dist_rows
from repro.core.annotations import Annotation
from repro.core.ir import (
    ChildRef,
    CondRef,
    If,
    Recurse,
    Return,
    Seq,
    TraversalSpec,
    Update,
    UpdateRef,
)
from repro.trees.vptree import VPTreeBuild, build_vptree
from repro.trees.linearize import linearize_left_biased


def add_covering_balls(build: VPTreeBuild, data: np.ndarray) -> None:
    """Attach ``center``/``radius`` arrays: the covering ball of each
    node's subtree (vantage-centered for internal nodes, centroid-
    centered for leaves).

    The builder records every node's bucket range *before* splitting,
    so each node still knows its full subset of ``point_order``.
    """
    raw = build.tree
    n = raw.n_nodes
    d = data.shape[1]
    center = np.zeros((n, d))
    radius = np.zeros(n)
    start = raw.arrays["leaf_start"]
    count = raw.arrays["leaf_count"]
    is_leaf = raw.arrays["is_leaf"]
    vantage = raw.arrays["vantage"]
    for node in range(n):
        subset = data[build.point_order[start[node] : start[node] + count[node]]]
        c = subset.mean(axis=0) if is_leaf[node] else vantage[node]
        center[node] = c
        radius[node] = np.sqrt(((subset - c) ** 2).sum(axis=1).max())
    raw.arrays["center"] = center
    raw.arrays["radius"] = radius


def _cannot_contain_better(ctx, node, pt, args):
    """Prune: even the closest point of the covering ball is no better
    than the current best (triangle inequality)."""
    tree, q = ctx.tree, ctx.points
    c = tree.arrays["center"][node]
    r = tree.arrays["radius"][node]
    d = np.sqrt(sq_dist_rows(q.coords[pt], c))
    return d - r >= ctx.out["nn_dist"][pt]


def _is_leaf(ctx, node, pt, args):
    return ctx.tree.arrays["is_leaf"][node]


def _closer_inside(ctx, node, pt, args):
    tree, q = ctx.tree, ctx.points
    d = np.sqrt(sq_dist_rows(q.coords[pt], tree.arrays["vantage"][node]))
    return d < tree.arrays["tau"][node]


def _consider_vantage(ctx, node, pt, args):
    tree, q = ctx.tree, ctx.points
    cand_id = tree.arrays["vantage_id"][node]
    d = np.sqrt(sq_dist_rows(q.coords[pt], tree.arrays["vantage"][node]))
    better = (d < ctx.out["nn_dist"][pt]) & (cand_id != q.orig_ids[pt])
    rows = pt[better]
    ctx.out["nn_dist"][rows] = d[better]
    ctx.out["nn_id"][rows] = cand_id[better]


def _make_scan_bucket(bucket_coords: np.ndarray, bucket_ids: np.ndarray, leaf_size: int):
    def scan_bucket(ctx, node, pt, args):
        tree, q = ctx.tree, ctx.points
        start = tree.arrays["leaf_start"][node]
        count = tree.arrays["leaf_count"][node]
        p = q.coords[pt]
        mine = q.orig_ids[pt]
        for slot in range(leaf_size):
            valid = slot < count
            cand = np.minimum(start + slot, len(bucket_coords) - 1)
            d = np.sqrt(sq_dist_rows(p, bucket_coords[cand]))
            better = valid & (d < ctx.out["nn_dist"][pt]) & (bucket_ids[cand] != mine)
            rows = pt[better]
            ctx.out["nn_dist"][rows] = d[better]
            ctx.out["nn_id"][rows] = bucket_ids[cand[better]]

    return scan_bucket


def build_vptree_app(
    data: np.ndarray,
    order: np.ndarray,
    leaf_size: int = 8,
    name: str = "vp",
) -> TraversalApp:
    """Assemble the VP benchmark (nearest other point in ``data``)."""
    data = np.asarray(data, dtype=np.float64)
    build = build_vptree(data, leaf_size=leaf_size)
    add_covering_balls(build, data)
    tree = linearize_left_biased(build.tree)
    bucket_coords = np.ascontiguousarray(data[build.point_order])
    bucket_ids = build.point_order.copy()
    queries = QuerySet.from_order(data, order)
    dim = data.shape[1]

    body = Seq(
        If(CondRef("cannot_contain_better", reads=("hot",), cost=2.0 * dim), Return()),
        If(
            CondRef("is_leaf", point_dependent=False, reads=("hot",), cost=1.0),
            Seq(
                Update(
                    UpdateRef("scan_bucket", reads=("leafdata",), cost=2.0 * dim * leaf_size)
                ),
                Return(),
            ),
            Seq(
                Update(UpdateRef("consider_vantage", reads=("hot",), cost=2.0 * dim)),
                If(
                    CondRef("closer_inside", reads=("hot",), cost=2.0 * dim),
                    Seq(Recurse(ChildRef("inside")), Recurse(ChildRef("outside"))),
                    Seq(Recurse(ChildRef("outside")), Recurse(ChildRef("inside"))),
                ),
            ),
        ),
    )
    spec = TraversalSpec(
        name=name,
        body=body,
        conditions={
            "cannot_contain_better": _cannot_contain_better,
            "is_leaf": _is_leaf,
            "closer_inside": _closer_inside,
        },
        updates={
            "consider_vantage": _consider_vantage,
            "scan_bucket": _make_scan_bucket(bucket_coords, bucket_ids, leaf_size),
        },
        annotations=frozenset({Annotation.CALLSETS_EQUIVALENT}),
    )

    n = len(order)

    def make_out() -> Dict[str, np.ndarray]:
        return {
            "nn_dist": np.full(n, np.inf, dtype=np.float64),
            "nn_id": np.full(n, -1, dtype=np.int64),
        }

    def brute_force() -> Dict[str, np.ndarray]:
        d = chunked_sq_dists(queries.coords, data)
        d[np.arange(n), queries.orig_ids] = np.inf
        nn = d.argmin(axis=1)
        return {
            "nn_dist": np.sqrt(d[np.arange(n), nn]),
            "nn_id": nn.astype(np.int64),
        }

    def check(got: Dict[str, np.ndarray], want: Dict[str, np.ndarray]) -> None:
        np.testing.assert_allclose(
            got["nn_dist"], want["nn_dist"], rtol=1e-9, atol=1e-12
        )

    return TraversalApp(
        name=name,
        spec=spec,
        tree=tree,
        queries=queries,
        make_out=make_out,
        params={},
        brute_force=brute_force,
        check=check,
        expect_guided=True,
        visit_cost_scale=1.1,
        extras={"bucket_coords": bucket_coords, "bucket_ids": bucket_ids},
    )
