"""Common application scaffolding.

A :class:`TraversalApp` is what the experiment harness consumes: a
traversal spec, the linearized tree it runs over, a factory for fresh
evaluation contexts (so independent launches never share result
arrays), and a brute-force oracle. Query points carry their original
dataset ids (:class:`QuerySet`) so that point sorting — which permutes
the query order but not the tree — keeps self-exclusion and result
comparison straight.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Tuple

import numpy as np

from repro.core.ir import EvalContext, TraversalSpec
from repro.trees.linearize import LinearTree


@dataclass(frozen=True)
class QuerySet:
    """The traversing points, in launch order.

    ``coords[i]`` is the i-th query's coordinates; ``orig_ids[i]`` its
    index in the original dataset (used for self-exclusion and for
    comparing results across different point orders).
    """

    coords: np.ndarray
    orig_ids: np.ndarray

    def __post_init__(self) -> None:
        if len(self.coords) != len(self.orig_ids):
            raise ValueError("coords and orig_ids must align")

    @property
    def n(self) -> int:
        return len(self.coords)

    @classmethod
    def from_order(cls, data: np.ndarray, order: np.ndarray) -> "QuerySet":
        return cls(coords=np.ascontiguousarray(data[order]), orig_ids=np.asarray(order))


@dataclass
class TraversalApp:
    """One benchmark instance: spec + tree + data + oracle."""

    name: str
    spec: TraversalSpec
    tree: LinearTree
    queries: QuerySet
    #: fresh result arrays for one run, keyed like ``ctx.out``.
    make_out: Callable[[], Dict[str, np.ndarray]]
    params: Dict[str, float]
    #: computes expected results (same keys as ``make_out``), indexed by
    #: *query row* (launch order).
    brute_force: Callable[[], Dict[str, np.ndarray]]
    #: compares a run's out against oracle out; raises AssertionError.
    check: Callable[[Dict[str, np.ndarray], Dict[str, np.ndarray]], None]
    #: expected guided/unguided classification (tests assert it).
    expect_guided: bool
    #: CPU per-visit instruction weight relative to the default.
    visit_cost_scale: float = 1.0
    #: auxiliary per-app data (e.g. bucket-contiguous payload arrays)
    #: exposed to callbacks through ``ctx.points``/``ctx.tree``.
    extras: Dict[str, np.ndarray] = field(default_factory=dict)

    @property
    def n_points(self) -> int:
        return self.queries.n

    def make_ctx(self) -> EvalContext:
        """A fresh evaluation context for one launch."""
        return EvalContext(
            tree=self.tree,
            points=self.queries,
            out=self.make_out(),
            params=dict(self.params),
        )


def pairwise_sq_dists(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Squared Euclidean distances between row sets (small inputs)."""
    diff = a[:, None, :] - b[None, :, :]
    return np.einsum("ijk,ijk->ij", diff, diff)


def chunked_sq_dists(
    queries: np.ndarray, data: np.ndarray, chunk: int = 512
) -> "np.ndarray":
    """Generator-free chunked distance computation for oracles."""
    n = len(queries)
    out = np.empty((n, len(data)), dtype=np.float64)
    for lo in range(0, n, chunk):
        hi = min(n, lo + chunk)
        out[lo:hi] = pairwise_sq_dists(queries[lo:hi], data)
    return out


def sq_dist_rows(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Row-wise squared distance between aligned (m, d) arrays."""
    diff = a - b
    return np.einsum("ij,ij->i", diff, diff)
