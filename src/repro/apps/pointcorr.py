"""Point Correlation (PC): the two-point correlation statistic.

For each point, count how many *other* points lie within a fixed
radius, by traversing a bounding-box kd-tree (Moore et al.'s n-point
correlation algorithm). The traversal (Fig. 4) truncates when the query
ball cannot intersect a node's bounding box, and scans leaf buckets —
an **unguided**, single-call-set traversal: children are always visited
left then right.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.apps.base import QuerySet, TraversalApp, chunked_sq_dists
from repro.core.ir import (
    ChildRef,
    CondRef,
    If,
    Recurse,
    Return,
    Seq,
    TraversalSpec,
    Update,
    UpdateRef,
)
from repro.trees.kdtree import build_kdtree_buckets
from repro.trees.linearize import linearize_left_biased


def _bbox_cannot_intersect(ctx, node, pt, args):
    """Truncation test: min squared distance from query to the node's
    bounding box exceeds the correlation radius.

    The gathered ``lo`` copy doubles as the output buffer for the clip
    and the difference: at millions of calls per launch the two saved
    temporaries are a measurable slice of the traversal.
    """
    tree, q = ctx.tree, ctx.points
    lo = tree.arrays["bbox_min"][node]
    hi = tree.arrays["bbox_max"][node]
    p = q.coords[pt]
    np.clip(p, lo, hi, out=lo)
    np.subtract(p, lo, out=lo)
    return np.einsum("ij,ij->i", lo, lo) > ctx.params["radius_sq"]


def _is_leaf(ctx, node, pt, args):
    return ctx.tree.arrays["is_leaf"][node]


def _make_count_bucket(bucket_coords: np.ndarray, bucket_ids: np.ndarray, leaf_size: int):
    # Pad the bucket arrays by one leaf so `start + slot` never needs
    # clamping; padded slots carry id -1 and are masked by the slot
    # validity test anyway, so the hit counts are unchanged.
    dim = bucket_coords.shape[1]
    pad_coords = np.vstack([bucket_coords, np.zeros((leaf_size, dim))])
    pad_ids = np.concatenate(
        [bucket_ids, np.full(leaf_size, -1, dtype=bucket_ids.dtype)]
    )

    def count_bucket(ctx, node, pt, args):
        tree, q = ctx.tree, ctx.points
        start = tree.arrays["leaf_start"][node]
        count = tree.arrays["leaf_count"][node]
        p = q.coords[pt]
        mine = q.orig_ids[pt]
        r_sq = ctx.params["radius_sq"]
        hits = np.zeros(len(node), dtype=np.int64)
        for slot in range(leaf_size):
            cand = start + slot
            diff = pad_coords[cand] - p
            d = np.einsum("ij,ij->i", diff, diff)
            hits += ((slot < count) & (d <= r_sq) & (pad_ids[cand] != mine)).astype(
                np.int64
            )
        np.add.at(ctx.out["count"], pt, hits)

    return count_bucket


def build_pointcorr_app(
    data: np.ndarray,
    order: np.ndarray,
    radius: float,
    leaf_size: int = 8,
    name: str = "pc",
) -> TraversalApp:
    """Assemble the PC benchmark over ``data`` with queries in ``order``."""
    data = np.asarray(data, dtype=np.float64)
    build = build_kdtree_buckets(data, leaf_size=leaf_size)
    tree = linearize_left_biased(build.tree)
    bucket_coords = np.ascontiguousarray(data[build.point_order])
    bucket_ids = build.point_order.copy()
    queries = QuerySet.from_order(data, order)
    dim = data.shape[1]

    body = Seq(
        If(CondRef("cannot_correlate", reads=("hot",), cost=2.0 * dim), Return()),
        If(
            CondRef("is_leaf", point_dependent=False, reads=("hot",), cost=1.0),
            Seq(
                Update(
                    UpdateRef(
                        "count_bucket", reads=("leafdata",), cost=2.0 * dim * leaf_size
                    )
                ),
                Return(),
            ),
            Seq(Recurse(ChildRef("left")), Recurse(ChildRef("right"))),
        ),
    )
    spec = TraversalSpec(
        name=name,
        body=body,
        conditions={
            "cannot_correlate": _bbox_cannot_intersect,
            "is_leaf": _is_leaf,
        },
        updates={
            "count_bucket": _make_count_bucket(bucket_coords, bucket_ids, leaf_size)
        },
    )

    params = {"radius_sq": float(radius) ** 2}
    n = len(order)

    def make_out() -> Dict[str, np.ndarray]:
        return {"count": np.zeros(n, dtype=np.int64)}

    def brute_force() -> Dict[str, np.ndarray]:
        d = chunked_sq_dists(queries.coords, data)
        within = d <= params["radius_sq"]
        counts = within.sum(axis=1)
        # exclude the query itself (distance zero to its own row).
        counts -= within[np.arange(n), queries.orig_ids].astype(np.int64)
        return {"count": counts.astype(np.int64)}

    def check(got: Dict[str, np.ndarray], want: Dict[str, np.ndarray]) -> None:
        np.testing.assert_array_equal(got["count"], want["count"])

    return TraversalApp(
        name=name,
        spec=spec,
        tree=tree,
        queries=queries,
        make_out=make_out,
        params=params,
        brute_force=brute_force,
        check=check,
        expect_guided=False,
        visit_cost_scale=1.0,
        extras={"bucket_coords": bucket_coords, "bucket_ids": bucket_ids},
    )
