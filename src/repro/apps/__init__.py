"""The paper's five benchmarks (Section 6.1.2), expressed as traversal
specs over the tree substrates:

* :mod:`repro.apps.barneshut` — Barnes-Hut n-body force computation
  (oct-tree, unguided).
* :mod:`repro.apps.pointcorr` — two-point correlation counting
  (leaf-bucket kd-tree, unguided).
* :mod:`repro.apps.knn` — k-nearest-neighbor search (leaf-bucket
  kd-tree, guided, two call sets, annotated equivalent).
* :mod:`repro.apps.nn` — nearest-neighbor search over an
  internal-point kd-tree (guided, two call sets, annotated).
* :mod:`repro.apps.vptree_nn` — nearest-neighbor search over a
  vantage-point tree (guided, two call sets, annotated).

Every app ships a brute-force oracle used by the tests to validate all
executor variants.
"""

from repro.apps.base import QuerySet, TraversalApp
from repro.apps.barneshut import build_barneshut_app
from repro.apps.pointcorr import build_pointcorr_app
from repro.apps.knn import build_knn_app
from repro.apps.nn import build_nn_app
from repro.apps.vptree_nn import build_vptree_app

__all__ = [
    "QuerySet",
    "TraversalApp",
    "build_barneshut_app",
    "build_pointcorr_app",
    "build_knn_app",
    "build_nn_app",
    "build_vptree_app",
]
