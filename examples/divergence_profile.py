#!/usr/bin/env python
"""Looking inside a traversal: divergence traces and rope mechanisms.

Section 4 of the paper is an argument about *dynamics* — threads drift
apart in the tree, masks thin out, coalescing decays. This example uses
the simulator's per-step traces to watch it happen on point correlation
over the clustered geocity input, and lines up three rope mechanisms:

* non-lockstep autoropes (per-thread stacks),
* statically preinstalled ropes (the hand-coded, stackless baseline
  that autoropes generalizes),
* lockstep autoropes (per-warp stack + masks).

Run: ``python examples/divergence_profile.py``
"""

import numpy as np

from repro.core.pipeline import TransformPipeline
from repro.apps.pointcorr import build_pointcorr_app
from repro.gpusim.device import TESLA_C2070
from repro.gpusim.executors import (
    AutoropesExecutor,
    LockstepExecutor,
    StaticRopesExecutor,
    TraversalLaunch,
)
from repro.points.datasets import geocity_like
from repro.points.sorting import morton_order, shuffled_order


def run(app, compiled, executor, lockstep=False):
    launch = TraversalLaunch(
        kernel=compiled.lockstep if lockstep else compiled.autoropes,
        tree=app.tree,
        ctx=app.make_ctx(),
        n_points=app.n_points,
        device=TESLA_C2070,
        trace=True,
    )
    res = executor(launch).run()
    app.check(launch.ctx.out, app.brute_force())
    return res


def sparkline(values, width=48):
    blocks = " .:-=+*#%@"
    v = np.asarray(values, dtype=float)
    if len(v) > width:  # resample
        idx = np.linspace(0, len(v) - 1, width).astype(int)
        v = v[idx]
    hi = v.max() if v.max() > 0 else 1.0
    return "".join(blocks[min(int(x / hi * (len(blocks) - 1)), 9)] for x in v)


def main() -> None:
    ds = geocity_like(n=2048, seed=33)
    pipeline = TransformPipeline()

    for label, order in [
        ("sorted  ", morton_order(ds.points)),
        ("unsorted", shuffled_order(ds.n, seed=3)),
    ]:
        app = build_pointcorr_app(ds.points, order, radius=0.01, leaf_size=4)
        compiled = pipeline.compile(app.spec)

        auto = run(app, compiled, AutoropesExecutor)
        ropes = run(app, compiled, StaticRopesExecutor)
        lock = run(app, compiled, LockstepExecutor, lockstep=True)

        print(f"==== geocity PC, {label} points ====")
        for name, res in (
            ("autoropes (per-thread)", auto),
            ("static ropes (stackless)", ropes),
            ("lockstep (per-warp)", lock),
        ):
            tr = res.trace
            util = tr.lane_utilization(TESLA_C2070.warp_size)
            print(
                f"  {name:<26} {res.time_ms:7.3f} ms | steps {len(tr):4d} "
                f"| tail {tr.tail_fraction():4.0%} "
                f"| stack ops {res.stats.stack_ops:8d}"
            )
            print(f"      active warps  {sparkline(tr.active_warps)}")
            print(f"      lane util     {sparkline(util)}")
        print()

    print("Reading the sparklines: sorted points keep lane utilization")
    print("high for the whole (short) run; shuffled points leave a long,")
    print("thin tail of active warps — the load imbalance that makes the")
    print("clustered Geocity input the paper's consistent outlier. The")
    print("stackless static-ropes walk matches autoropes step for step")
    print("but does zero stack operations: that difference is the")
    print("'price of generality' autoropes pays, and lockstep buys it")
    print("back with coalesced loads.")


if __name__ == "__main__":
    main()
