#!/usr/bin/env python
"""Quickstart: transform one traversal and run it on the simulated GPU.

This walks the full pipeline on the paper's running example, point
correlation (Fig. 4 -> Fig. 6/8):

1. declare the recursive traversal as a spec,
2. compile it (call-set analysis -> autoropes -> lockstep),
3. print the generated pseudocode (the paper's figures),
4. launch both variants on the simulated Tesla C2070 and compare
   against the brute-force oracle and the CPU baseline.

Run: ``python examples/quickstart.py``
"""

import numpy as np

from repro.apps.pointcorr import build_pointcorr_app
from repro.core.codegen import render_iterative, render_recursive
from repro.core.pipeline import TransformPipeline
from repro.cpusim.threads import cpu_time_ms
from repro.gpusim.device import TESLA_C2070
from repro.gpusim.executors import (
    AutoropesExecutor,
    LockstepExecutor,
    RecursiveExecutor,
    TraversalLaunch,
)
from repro.gpusim.stack import RopeStackLayout
from repro.points.datasets import random_points
from repro.points.sorting import morton_order


def main() -> None:
    # -- 1. a dataset and a traversal spec --------------------------------
    ds = random_points(n=2048, dim=3, seed=7)
    order = morton_order(ds.points)  # Section 4.4: sort the points
    app = build_pointcorr_app(ds.points, order, radius=0.12, leaf_size=8)

    # -- 2. compile --------------------------------------------------------
    compiled = TransformPipeline().compile(app.spec)
    print("== transformation log ==")
    for line in compiled.log:
        print("  *", line)

    # -- 3. the paper's figures, regenerated -------------------------------
    print("\n== recursive form (Fig. 4) ==")
    print(render_recursive(app.spec))
    print("\n== autoropes form (Fig. 6) ==")
    print(render_iterative(compiled.autoropes))
    print("\n== lockstep form (Fig. 8) ==")
    print(render_iterative(compiled.lockstep))

    # -- 4. launch on the simulated GPU ------------------------------------
    want = app.brute_force()
    results = {}
    for name, kernel, executor, layout in [
        ("autoropes (non-lockstep)", compiled.autoropes, AutoropesExecutor,
         RopeStackLayout.INTERLEAVED_GLOBAL),
        ("lockstep", compiled.lockstep, LockstepExecutor, RopeStackLayout.SHARED),
    ]:
        ctx = app.make_ctx()
        launch = TraversalLaunch(
            kernel=kernel, tree=app.tree, ctx=ctx, n_points=app.n_points,
            device=TESLA_C2070, stack_layout=layout,
            record_visits=name.startswith("autoropes"),
        )
        res = executor(launch).run()
        app.check(ctx.out, want)  # exact against brute force
        results[name] = res
        print(f"\n{name}: {res.time_ms:.3f} model-ms, "
              f"avg nodes/point {res.avg_nodes_per_point:.0f}, "
              f"L2 hit rate {res.stats.l2_hit_rate:.2f}, "
              f"occupancy {res.occupancy:.2f}")

    ctx = app.make_ctx()
    rec = RecursiveExecutor(
        TraversalLaunch(kernel=compiled.autoropes, tree=app.tree, ctx=ctx,
                        n_points=app.n_points, device=TESLA_C2070),
        masking=False,
    ).run()
    app.check(ctx.out, want)
    print(f"\nnaive recursive GPU baseline: {rec.time_ms:.3f} model-ms "
          f"(autoropes improves it by "
          f"{(rec.time_ms / results['lockstep'].time_ms - 1) * 100:.0f}%)")

    seqs = results["autoropes (non-lockstep)"].per_point_sequences()
    for threads in (1, 8, 32):
        cpu = cpu_time_ms(seqs, threads)
        best = min(r.time_ms for r in results.values())
        print(f"CPU x{threads:>2}: {cpu.time_ms:8.3f} model-ms "
              f"(GPU speedup {cpu.time_ms / best:.1f}x)")


if __name__ == "__main__":
    main()
