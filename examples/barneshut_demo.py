#!/usr/bin/env python
"""Barnes-Hut n-body demo: a short simulation on the simulated GPU.

Reproduces the paper's flagship workload end to end: sample a Plummer
sphere, and for a few leapfrog timesteps (the paper runs its inputs for
five) rebuild the oct-tree, sort the bodies along a Morton curve
(Section 4.4), run the force traversal with the lockstep kernel and a
per-warp shared-memory rope stack (Section 5.2), and integrate.

Also validates the traversal forces against the exact O(n^2) sum and
shows how the opening angle theta trades accuracy for node visits.

Run: ``python examples/barneshut_demo.py``
"""

import numpy as np

from repro.apps.barneshut import build_barneshut_app, exact_forces
from repro.core.pipeline import TransformPipeline
from repro.gpusim.device import TESLA_C2070
from repro.gpusim.executors import LockstepExecutor, TraversalLaunch
from repro.gpusim.stack import RopeStackLayout
from repro.points.datasets import BodySet, plummer_bodies
from repro.points.sorting import morton_order

DT = 0.05
STEPS = 5


def forces(bodies: BodySet, theta: float):
    """One traversal pass: returns accelerations (original body order)
    and the launch result."""
    order = morton_order(bodies.pos)
    app = build_barneshut_app(bodies, order, theta=theta, leaf_size=4)
    compiled = TransformPipeline().compile(app.spec)
    ctx = app.make_ctx()
    launch = TraversalLaunch(
        kernel=compiled.lockstep,
        tree=app.tree,
        ctx=ctx,
        n_points=app.n_points,
        device=TESLA_C2070,
        stack_layout=RopeStackLayout.SHARED,
    )
    res = LockstepExecutor(launch).run()
    acc = np.empty_like(ctx.out["acc"])
    acc[order] = ctx.out["acc"]  # back to original body order
    return acc, res, app


def main() -> None:
    bodies = plummer_bodies(n=2048, seed=11)
    theta = 0.5

    print("== accuracy vs theta (one timestep) ==")
    for th in (0.2, 0.5, 1.0):
        acc, res, app = forces(bodies, th)
        exact = exact_forces(app.queries, bodies.pos, bodies.mass, app.params["eps_sq"])
        exact_orig = np.empty_like(exact["acc"])
        exact_orig[app.queries.orig_ids] = exact["acc"]
        rel = np.linalg.norm(acc - exact_orig, axis=1) / np.maximum(
            np.linalg.norm(exact_orig, axis=1), 1e-12
        )
        print(
            f"  theta={th:3.1f}: median rel err {np.median(rel):.2e}, "
            f"avg nodes/body {res.avg_nodes_per_point:6.0f}, "
            f"traversal {res.time_ms:7.3f} model-ms"
        )

    print(f"\n== {STEPS}-step leapfrog simulation (theta={theta}) ==")
    pos, vel = bodies.pos.copy(), bodies.vel.copy()
    for step in range(STEPS):
        current = BodySet(name="plummer", pos=pos, vel=vel, mass=bodies.mass)
        acc, res, _ = forces(current, theta)
        vel = vel + DT * acc
        pos = pos + DT * vel
        com = (pos * bodies.mass[:, None]).sum(axis=0) / bodies.mass.sum()
        ke = 0.5 * (bodies.mass * (vel**2).sum(axis=1)).sum()
        print(
            f"  step {step + 1}: traversal {res.time_ms:7.3f} model-ms, "
            f"warp work expansion {res.work_expansion_per_warp().mean():.2f}, "
            f"|COM| {np.linalg.norm(com):.3e}, KE {ke:.4f}"
        )
    print("\nCenter of mass stays pinned (momentum conservation) and the")
    print("work expansion stays low: Morton-sorted bodies give each warp")
    print("nearly identical traversals, exactly the Section 4.4 effect.")


if __name__ == "__main__":
    main()
