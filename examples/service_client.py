#!/usr/bin/env python
"""Using the online traversal service as a library client.

The offline harness answers "how fast is this traversal over a whole
dataset"; the service answers single queries as they arrive.  This
example registers two long-lived sessions (kNN and point correlation
over the same clustered dataset — one tree build and one plan compile
each, shared through the plan cache), then exercises the three client
paths:

* ``query``      — one synchronous query (forces a degenerate batch);
* ``submit``/``advance`` — the asynchronous path under the logical
  clock, where batches fill or time out;
* ``query_many`` — the bulk path, with batch spatial reordering
  (Section 4.4) and similarity-profiled backend routing (Section 4.5)
  working at full batch width.

Run: ``python examples/service_client.py``
"""

import numpy as np

from repro.points.datasets import dataset_by_name
from repro.service import ServiceConfig, TraversalService

N_DATA = 1024
N_BULK = 256


def main() -> None:
    rng = np.random.default_rng(11)
    geo = dataset_by_name("geocity", N_DATA, seed=11)

    cfg = ServiceConfig(max_batch=128, max_wait_ms=1.0, sort="morton")
    svc = TraversalService(cfg)
    svc.register("knn", app="knn", data=geo.points, k=4, leaf_size=4)
    svc.register("pc", app="pc", data=geo.points, radius=0.1, leaf_size=4)

    # One synchronous query: submit + forced flush under the hood.
    probe = geo.points[rng.integers(N_DATA)] + rng.normal(scale=0.01, size=2)
    ticket = svc.query("knn", probe)
    print(f"query(knn): neighbors {ticket.result['knn_id']} "
          f"(backend={ticket.backend}, batch of {ticket.batch_size})")

    # Asynchronous submits: the batch flushes when the window expires.
    now = 0.0
    tickets = []
    for _ in range(40):
        now += float(rng.exponential(0.01))
        coord = geo.points[rng.integers(N_DATA)] + rng.normal(scale=0.01, size=2)
        tickets.append(svc.submit("pc", coord, now=now))
    svc.advance(now + cfg.max_wait_ms)
    done = sum(t.done for t in tickets)
    print(f"submit/advance(pc): {done}/{len(tickets)} answered after the "
          f"{cfg.max_wait_ms} ms window (backend={tickets[0].backend})")

    # Bulk path: full batches dispatch as they fill.
    bulk = geo.points[rng.permutation(N_DATA)][:N_BULK] + rng.normal(
        scale=0.01, size=(N_BULK, 2)
    )
    results = svc.query_many("knn", bulk)
    dists = np.stack([t.result["knn_dist"] for t in results])
    print(f"query_many(knn): {len(results)} queries, "
          f"mean 1-NN distance {np.sqrt(dists[:, 0]).mean():.4f}")

    print()
    print(svc.stats().format())


if __name__ == "__main__":
    main()
