#!/usr/bin/env python
"""Guided-traversal demo: kNN search, call-set votes, and sorting.

k-nearest-neighbor search is the paper's canonical *guided* traversal
(Fig. 5): two call sets, chosen per node by which side of the split
plane the query falls on. This demo shows the pieces that make guided
traversals work on the GPU:

* static call-set analysis finding both call sets,
* the CALLSETS_EQUIVALENT annotation enabling lockstep via the
  per-warp majority vote (Section 4.3),
* the run-time profiler (Section 4.4) deciding lockstep vs
  non-lockstep from traversal similarity of neighboring points,
* the sorted-vs-unsorted gap in work expansion and traversal time.

Run: ``python examples/knn_search.py``
"""

import numpy as np

from repro.apps.knn import build_knn_app
from repro.core.pipeline import TransformPipeline
from repro.core.profiling import sample_similarity
from repro.cpusim.recursive import RecursiveInterpreter
from repro.gpusim.device import TESLA_C2070
from repro.gpusim.executors import (
    AutoropesExecutor,
    LockstepExecutor,
    TraversalLaunch,
)
from repro.points.datasets import geocity_like, random_points
from repro.points.sorting import morton_order, shuffled_order


def run(app, compiled, lockstep: bool):
    kernel = compiled.lockstep if lockstep else compiled.autoropes
    ctx = app.make_ctx()
    launch = TraversalLaunch(
        kernel=kernel, tree=app.tree, ctx=ctx,
        n_points=app.n_points, device=TESLA_C2070,
    )
    exe = LockstepExecutor(launch) if lockstep else AutoropesExecutor(launch)
    res = exe.run()
    app.check(ctx.out, app.brute_force())  # distances must be exact
    return res


def main() -> None:
    pipeline = TransformPipeline()
    for ds, label in [
        (random_points(n=2048, dim=7, seed=21), "random 7-d"),
        (geocity_like(n=2048, seed=22), "geocity 2-d (clustered)"),
    ]:
        print(f"==== {label} ====")
        for sorted_points in (True, False):
            order = (
                morton_order(ds.points)
                if sorted_points
                else shuffled_order(ds.n, seed=5)
            )
            app = build_knn_app(ds.points, order, k=4, leaf_size=8)
            compiled = pipeline.compile(app.spec)
            assert len(compiled.analysis.call_sets) == 2  # guided, Fig. 5
            assert compiled.lockstep is not None  # thanks to the annotation

            # Section 4.4: sample neighboring points' traversals.
            probe_ctx = app.make_ctx()
            interp = RecursiveInterpreter(app.spec, app.tree, probe_ctx)
            sim = sample_similarity(interp.run_point, app.n_points, n_samples=6)
            choice = compiled.choose_variant(sim)

            res_l = run(app, compiled, lockstep=True)
            res_n = run(app, compiled, lockstep=False)
            tag = "sorted  " if sorted_points else "unsorted"
            picked = "lockstep" if choice.lockstep else "non-lockstep"
            print(
                f"  {tag}: similarity {sim.mean_jaccard:.2f} -> profiler "
                f"picks {picked:13s} | lockstep {res_l.time_ms:7.3f} ms "
                f"(work exp {res_l.work_expansion_per_warp().mean():5.2f}) "
                f"| non-lockstep {res_n.time_ms:7.3f} ms"
            )
        print()
    print("Sorted inputs keep warps coherent: high similarity, low work")
    print("expansion, lockstep wins. Shuffled inputs explode the warp")
    print("union and the profiler falls back to the non-lockstep variant.")


if __name__ == "__main__":
    main()
