#!/usr/bin/env python
"""Bring-your-own traversal: the pseudo-tail normalization in action.

The paper's transformations are not tied to the five benchmarks — any
repeated recursive tree traversal qualifies. This example defines a new
one from scratch: **range-sum queries over a balanced BST**, written in
the natural *in-order* style::

    void recurse(node n, query q) {
        if (disjoint(n, q)) return;   // subtree outside [lo, hi]
        recurse(n.left, q);
        add_if_inside(n, q);          // <- between the recursive calls!
        recurse(n.right, q);
    }

That update between the two recursive calls makes the function *not*
pseudo-tail-recursive, so autoropes cannot apply directly (Section
3.2). The pipeline's normalization pushes the in-order update down into
the right child's invocation (carrying the parent node on the rope
stack via synthetic arguments) and only then applies autoropes — the
construction sketched in the paper's tech report.

Run: ``python examples/custom_traversal.py``
"""

import numpy as np

from repro.apps.base import QuerySet
from repro.core.codegen import render_iterative, render_recursive
from repro.core.ir import (
    ChildRef,
    CondRef,
    EvalContext,
    If,
    Recurse,
    Return,
    Seq,
    TraversalSpec,
    Update,
    UpdateRef,
)
from repro.core.pipeline import TransformPipeline
from repro.cpusim.recursive import RecursiveInterpreter
from repro.gpusim.device import TESLA_C2070
from repro.gpusim.executors import AutoropesExecutor, TraversalLaunch
from repro.trees.node import FieldGroup, RawTree
from repro.trees.linearize import linearize_left_biased


def build_bst(keys: np.ndarray, values: np.ndarray) -> RawTree:
    """Balanced BST over sorted keys, with subtree [min, max] ranges."""
    order = np.argsort(keys, kind="stable")
    keys, values = keys[order], values[order]
    n = len(keys)
    left = np.full(n, -1, dtype=np.int64)
    right = np.full(n, -1, dtype=np.int64)
    key = np.zeros(n)
    value = np.zeros(n)
    lo_arr, hi_arr = np.zeros(n), np.zeros(n)
    counter = [0]

    def build(lo: int, hi: int) -> int:
        node = counter[0]
        counter[0] += 1
        mid = (lo + hi) // 2
        key[node], value[node] = keys[mid], values[mid]
        lo_arr[node], hi_arr[node] = keys[lo], keys[hi - 1]
        if lo < mid:
            left[node] = build(lo, mid)
        if mid + 1 < hi:
            right[node] = build(mid + 1, hi)
        return node

    build(0, n)
    return RawTree(
        child_names=("left", "right"),
        children={"left": left, "right": right},
        arrays={"key": key, "value": value, "lo": lo_arr, "hi": hi_arr},
        groups=(FieldGroup("hot", 16), FieldGroup("cold", 8)),
    ).validate()


def disjoint(ctx, node, pt, args):
    q = ctx.points.coords[pt]
    return (ctx.tree.arrays["hi"][node] < q[:, 0]) | (
        ctx.tree.arrays["lo"][node] > q[:, 1]
    )


def add_if_inside(ctx, node, pt, args):
    q = ctx.points.coords[pt]
    k = ctx.tree.arrays["key"][node]
    inside = (k >= q[:, 0]) & (k <= q[:, 1])
    np.add.at(ctx.out["sum"], pt, np.where(inside, ctx.tree.arrays["value"][node], 0.0))


def main() -> None:
    rng = np.random.default_rng(3)
    n = 1023
    keys = rng.uniform(0, 100, n)
    values = rng.uniform(0, 1, n)
    tree = linearize_left_biased(build_bst(keys, values))

    n_q = 512
    lo = rng.uniform(0, 90, n_q)
    queries = QuerySet(
        coords=np.stack([lo, lo + rng.uniform(1, 10, n_q)], axis=1),
        orig_ids=np.arange(n_q),
    )

    spec = TraversalSpec(
        name="range_sum",
        body=Seq(
            If(CondRef("disjoint", reads=("hot",)), Return()),
            Recurse(ChildRef("left")),
            Update(UpdateRef("add_if_inside", reads=("hot",))),
            Recurse(ChildRef("right")),
        ),
        conditions={"disjoint": disjoint},
        updates={"add_if_inside": add_if_inside},
    )
    print("== the in-order source (not pseudo-tail-recursive) ==")
    print(render_recursive(spec))

    compiled = TransformPipeline().compile(spec)
    print("\n== transformation log ==")
    for line in compiled.log:
        print("  *", line)
    print("\n== normalized + autoropes form ==")
    print(render_iterative(compiled.autoropes))

    ctx = EvalContext(
        tree=tree, points=queries, out={"sum": np.zeros(n_q)}, params={}
    )
    launch = TraversalLaunch(
        kernel=compiled.autoropes, tree=tree, ctx=ctx,
        n_points=n_q, device=TESLA_C2070,
    )
    res = AutoropesExecutor(launch).run()

    # Oracles: brute force and the scalar recursive interpreter.
    inside = (keys[None, :] >= queries.coords[:, :1]) & (
        keys[None, :] <= queries.coords[:, 1:]
    )
    brute = (inside * values[None, :]).sum(axis=1)
    np.testing.assert_allclose(ctx.out["sum"], brute, rtol=1e-9)

    ctx2 = EvalContext(tree=tree, points=queries, out={"sum": np.zeros(n_q)}, params={})
    interp = RecursiveInterpreter(compiled.normalized, tree, ctx2)
    for p in range(0, n_q, 64):
        interp.run_point(p)
    np.testing.assert_allclose(
        ctx2.out["sum"][::64], brute[::64], rtol=1e-9
    )

    print(f"\nall {n_q} range sums match brute force exactly;")
    print(f"traversal took {res.time_ms:.3f} model-ms, "
          f"avg {res.avg_nodes_per_point:.0f} nodes/query.")
    print("\nThe in-order update ran at the right moment for every query —")
    print("after the left subtree, before the right — even though the")
    print("iterative kernel never returns to a parent node.")


if __name__ == "__main__":
    main()
