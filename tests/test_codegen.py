"""Pretty-printer tests: the rendered pseudocode must exhibit the exact
shapes of the paper's Figures 4-8."""

import numpy as np

from repro.core.codegen import render_iterative, render_recursive
from repro.core.lockstep import apply_lockstep
from repro.core.autoropes import apply_autoropes
from repro.core.annotations import Annotation
from repro.core.ir import (
    ArgDecl,
    ChildRef,
    CondRef,
    If,
    Recurse,
    Return,
    Seq,
    TraversalSpec,
    Update,
    UpdateRef,
)


def _true(ctx, node, pt, args):
    return np.ones(len(node), dtype=bool)


def _noop(ctx, node, pt, args):
    return None


def pc_spec():
    return TraversalSpec(
        name="recurse",
        body=Seq(
            If(CondRef("cant_correlate"), Return()),
            If(
                CondRef("is_leaf", point_dependent=False),
                Seq(Update(UpdateRef("update_correlation")), Return()),
                Seq(Recurse(ChildRef("left")), Recurse(ChildRef("right"))),
            ),
        ),
        conditions={"cant_correlate": _true, "is_leaf": _true},
        updates={"update_correlation": _noop},
    )


def guided_spec():
    return TraversalSpec(
        name="recurse",
        body=Seq(
            If(CondRef("cant_correlate"), Return()),
            If(
                CondRef("closer_to_left"),
                Seq(Recurse(ChildRef("left")), Recurse(ChildRef("right"))),
                Seq(Recurse(ChildRef("right")), Recurse(ChildRef("left"))),
            ),
        ),
        args=(ArgDecl("arg", 0.0, update="bump"), ArgDecl("c", 1.0)),
        conditions={"cant_correlate": _true, "closer_to_left": _true},
        arg_rules={"bump": lambda c, n, p, a: a["arg"] + 1},
        annotations=frozenset({Annotation.CALLSETS_EQUIVALENT}),
    )


class TestRecursiveRendering:
    def test_fig4_shape(self):
        src = render_recursive(pc_spec())
        assert "if (cant_correlate(node, pt))" in src
        assert "return;" in src
        assert "recurse(node.left, pt);" in src
        assert "recurse(node.right, pt);" in src
        # left call comes before right call (original order)
        assert src.index("node.left") < src.index("node.right")

    def test_args_in_signature(self):
        src = render_recursive(guided_spec())
        assert "recurse(node node, point pt, arg, c)" in src.splitlines()[0]


class TestIterativeRendering:
    def test_fig6_shape(self):
        """Autoropes: stack loop, continue, reversed pushes."""
        src = render_iterative(apply_autoropes(pc_spec()))
        assert "stack stk = new stack();" in src
        assert "while (!stk.is_empty())" in src
        assert "continue;" in src
        # Fig. 6: push(right) textually precedes push(left).
        assert src.index("stk.push(node.right)") < src.index("stk.push(node.left)")

    def test_fig7_variant_args_ride_the_stack(self):
        """Fig. 7: the variant arg is pushed/popped with the rope; the
        invariant arg stays a parameter."""
        src = render_iterative(apply_autoropes(guided_spec()))
        assert "stk.push(node.right, arg);" in src
        assert "arg = stk.peek(1);" in src
        first_line = src.splitlines()[0]
        assert ", c)" in first_line and ", arg" not in first_line

    def test_fig8_lockstep_shape(self):
        """Fig. 8: mask on the stack, bit_clear on truncation, ballot
        before the guarded push."""
        src = render_iterative(apply_lockstep(apply_autoropes(pc_spec())))
        assert "uint mask;" in src
        assert "if (bit_set(mask, threadId))" in src
        assert "bit_clear(mask, threadId);" in src
        assert "mask = warp_ballot(mask);" in src
        assert "if (mask != 0)" in src
        assert "stk.push(node.left, mask);" in src

    def test_vote_rendered_for_guided_lockstep(self):
        src = render_iterative(apply_lockstep(apply_autoropes(guided_spec())))
        assert "warp_majority(closer_to_left(node, pt))" in src
