"""Perf-trend tool tests: report ingestion and dedup, per-cell diffs
with noise thresholds (regression / improvement / stable /
model-change / new / removed), the markdown report, the --check CI
gate, and the CLI round-trip through a history file on disk."""

import copy
import json

import pytest

from benchmarks.trend import (
    add_report,
    cell_key,
    check,
    diff_entries,
    latest_diff,
    load_history,
    load_report,
    main,
    render_markdown,
    save_history,
)


def make_report(stamp=1000, wall=2.0, model=1.5, rows=None):
    if rows is None:
        rows = [
            {
                "app": "pc", "input": "geocity", "scale": "large",
                "executor": "lockstep", "engine": "compiled",
                "wall_s": wall, "steps": 100, "node_visits": 5000,
                "warp_node_visits": 800, "model_time_ms": model,
            },
            {
                "app": "knn", "input": "geocity", "scale": "large",
                "executor": "autoropes", "engine": "interp",
                "wall_s": 1.0, "steps": 50, "node_visits": 2000,
                "warp_node_visits": 400, "model_time_ms": 0.7,
            },
        ]
    return {"meta": {"generated_unix": stamp}, "rows": rows}


def fresh_history():
    return {"meta": {"format": "bench-trend-v1"}, "entries": []}


class TestIngest:
    def test_add_sorts_by_stamp_and_dedups(self):
        h = fresh_history()
        add_report(h, make_report(stamp=2000))
        add_report(h, make_report(stamp=1000))
        add_report(h, make_report(stamp=2000))  # duplicate stamp: no-op
        assert [e["generated_unix"] for e in h["entries"]] == [1000, 2000]

    def test_load_report_validates_shape(self, tmp_path):
        p = tmp_path / "bad.json"
        p.write_text(json.dumps({"nope": []}))
        with pytest.raises(ValueError, match="rows"):
            load_report(str(p))
        rep = make_report()
        rep["rows"].append(dict(rep["rows"][0]))  # duplicate cell
        p2 = tmp_path / "dup.json"
        p2.write_text(json.dumps(rep))
        with pytest.raises(ValueError, match="duplicate"):
            load_report(str(p2))


class TestDiff:
    def test_statuses(self):
        old = make_report()["rows"]
        new = copy.deepcopy(old)
        new[0]["wall_s"] = 2.5  # +25%: regression
        new[1]["wall_s"] = 1.02  # +2%: inside 5% noise
        diffs = diff_entries(old, new, threshold_pct=5.0)
        by = {cell_key(d): d for d in diffs}
        assert by[cell_key(old[0])]["status"] == "regression"
        assert by[cell_key(old[0])]["delta_pct"] == pytest.approx(25.0)
        assert by[cell_key(old[1])]["status"] == "stable"

    def test_improvement_and_membership_changes(self):
        old = make_report()["rows"]
        new = copy.deepcopy(old)
        new[0]["wall_s"] = 1.0  # -50%: improvement
        gone = new.pop(1)
        new.append({**gone, "app": "nn"})  # one removed, one new
        by = {d["status"] for d in diff_entries(old, new)}
        assert by == {"improvement", "removed", "new"}

    def test_model_time_change_outranks_wall_clock(self):
        old = make_report()["rows"]
        new = copy.deepcopy(old)
        new[0]["model_time_ms"] = 9.9  # semantics moved
        d = {cell_key(x): x for x in diff_entries(old, new)}
        assert d[cell_key(old[0])]["status"] == "model-change"
        ok, msg = check(diff_entries(old, new))
        assert not ok and "simulated cost moved" in msg

    def test_check_passes_within_noise(self):
        old = make_report()["rows"]
        new = copy.deepcopy(old)
        new[0]["wall_s"] *= 1.03
        ok, msg = check(diff_entries(old, new, threshold_pct=5.0))
        assert ok and "OK" in msg
        ok, _ = check(None)  # single-report history: nothing to gate
        assert ok


class TestMarkdown:
    def test_report_contains_diff_and_history_tables(self):
        h = fresh_history()
        add_report(h, make_report(stamp=1000))
        add_report(h, make_report(stamp=2000, wall=3.0))
        text = render_markdown(h)
        assert "# Perf trend" in text
        assert "pc/geocity/large/lockstep/compiled" in text
        assert "regression" in text
        assert "## History" in text
        assert "| 2.0000 | 3.0000 |" in text

    def test_empty_and_single_entry(self):
        h = fresh_history()
        assert "No entries" in render_markdown(h)
        add_report(h, make_report())
        assert "nothing to diff" in render_markdown(h)


class TestCLI:
    def test_round_trip_and_check_gate(self, tmp_path, capsys):
        r1 = tmp_path / "r1.json"
        r2 = tmp_path / "r2.json"
        hist = tmp_path / "hist.json"
        md = tmp_path / "TREND.md"
        r1.write_text(json.dumps(make_report(stamp=1000)))
        r2.write_text(json.dumps(make_report(stamp=2000, wall=3.0)))
        assert main(["--history", str(hist), "--add", str(r1)]) == 0
        assert main(["--history", str(hist), "--add", str(r2),
                     "--markdown", str(md)]) == 0
        assert len(load_history(str(hist))["entries"]) == 2
        assert "regression" in md.read_text()
        # 50% regression: fails at the default threshold...
        assert main(["--history", str(hist), "--check"]) == 1
        # ...passes when the threshold allows it.
        assert main(["--history", str(hist), "--check",
                     "--threshold", "60"]) == 0

    def test_history_survives_save_load(self, tmp_path):
        hist = tmp_path / "h.json"
        h = fresh_history()
        add_report(h, make_report(stamp=1000), label="nightly")
        save_history(h, str(hist))
        back = load_history(str(hist))
        assert back["entries"][0]["label"] == "nightly"
        assert latest_diff(back) is None
