"""Integration shape tests: the qualitative claims of Section 6 that
must hold at any scale (run here at tiny scale).

These mirror the "shape expectations" listed in DESIGN.md; EXPERIMENTS.md
records the quantitative versions at the full experiment scale.
"""

import numpy as np
import pytest

from repro.harness.config import TINY
from repro.harness.runner import ExperimentRunner


@pytest.fixture(scope="module")
def runner():
    return ExperimentRunner(scale=TINY)


@pytest.fixture(scope="module")
def pc(runner):
    return {
        True: runner.run("pc", "covtype", True),
        False: runner.run("pc", "covtype", False),
    }


@pytest.fixture(scope="module")
def knn(runner):
    return {
        True: runner.run("knn", "covtype", True),
        False: runner.run("knn", "covtype", False),
    }


class TestLockstepVsNonLockstep:
    def test_lockstep_visits_more_nodes(self, pc, knn):
        for res in (*pc.values(), *knn.values()):
            assert res.lockstep.avg_nodes >= res.nonlockstep.avg_nodes

    def test_sorted_lockstep_wins_for_unguided(self, pc):
        assert pc[True].lockstep.time_ms < pc[True].nonlockstep.time_ms

    def test_sorting_helps_lockstep(self, pc, knn):
        for d in (pc, knn):
            assert d[True].lockstep.time_ms <= d[False].lockstep.time_ms


class TestWorkExpansion:
    def test_expansion_grows_when_unsorted(self, pc, knn):
        # small tolerance: at tiny scale the union can saturate at the
        # whole (tiny) tree, compressing the gap.
        for d in (pc, knn):
            assert (
                d[False].work_expansion_mean
                >= d[True].work_expansion_mean * 0.95
            )

    def test_expansion_bounded_below_by_one(self, pc):
        assert pc[True].work_expansion_mean >= 1.0


class TestRecursiveBaseline:
    def test_lockstep_beats_recursive_everywhere(self, pc, knn):
        for d in (pc, knn):
            for srt in (True, False):
                assert d[srt].improvement_vs_recursive(True) > 0

    def test_unsorted_nonlockstep_beats_recursive(self, pc):
        """Shuffled inputs blow up the recursive union walk."""
        assert pc[False].improvement_vs_recursive(False) > 0

    def test_recursive_masked_not_slower_than_unmasked(self, pc):
        for srt in (True, False):
            assert (
                pc[srt].recursive_lockstep.time_ms
                <= pc[srt].recursive_nonlockstep.time_ms * 1.001
            )


class TestCpuComparison:
    def test_gpu_beats_single_thread_cpu(self, pc, knn):
        for d in (pc, knn):
            for srt in (True, False):
                assert d[srt].speedup_vs_cpu(True, 1) > 1

    def test_cpu_scaling_monotone(self, pc):
        times = [pc[True].cpu_ms[t] for t in (1, 8, 32)]
        assert times[0] > times[1] >= times[2]

    def test_sorted_cpu_faster_than_unsorted(self, pc):
        """Point sorting improves CPU locality too (Section 4.4).

        At tiny scale the whole tree fits the modeled L1 window either
        way, so allow a small tolerance; the full-scale gap is recorded
        in EXPERIMENTS.md."""
        assert pc[True].cpu_ms[1] <= pc[False].cpu_ms[1] * 1.05


class TestGeocityOutlier:
    def test_geocity_traversals_are_short(self, runner):
        geo = runner.run("knn", "geocity", True)
        cov = runner.run("knn", "covtype", True)
        assert geo.nonlockstep.avg_nodes < cov.nonlockstep.avg_nodes

    def test_geocity_unsorted_expansion_blows_up(self, runner):
        geo_s = runner.run("knn", "geocity", True)
        geo_u = runner.run("knn", "geocity", False)
        assert geo_u.work_expansion_mean > geo_s.work_expansion_mean
