"""Device configuration tests."""

import dataclasses

import pytest

from repro.gpusim.device import DeviceConfig, TESLA_C2070, small_test_device


class TestValidation:
    def test_default_is_valid_c2070(self):
        assert TESLA_C2070.num_sms == 14
        assert TESLA_C2070.warp_size == 32
        assert TESLA_C2070.segment_bytes == 128

    def test_bad_warp_size(self):
        with pytest.raises(ValueError, match="warp_size"):
            dataclasses.replace(TESLA_C2070, warp_size=0).validate()

    def test_bad_num_sms(self):
        with pytest.raises(ValueError, match="num_sms"):
            dataclasses.replace(TESLA_C2070, num_sms=0).validate()

    def test_segment_must_be_power_of_two(self):
        with pytest.raises(ValueError, match="power of two"):
            dataclasses.replace(TESLA_C2070, segment_bytes=100).validate()

    def test_overlap_occupancy_range(self):
        with pytest.raises(ValueError, match="full_overlap_occupancy"):
            dataclasses.replace(TESLA_C2070, full_overlap_occupancy=0.0).validate()


class TestDerived:
    def test_max_resident_threads(self):
        assert TESLA_C2070.max_resident_threads == 14 * 48 * 32

    def test_with_warp_size(self):
        d = TESLA_C2070.with_warp_size(8)
        assert d.warp_size == 8
        assert d.num_sms == TESLA_C2070.num_sms

    def test_small_test_device(self):
        d = small_test_device(warp_size=4, num_sms=2)
        assert d.warp_size == 4 and d.num_sms == 2
        assert d.launch_overhead_cycles == 0.0
