"""Differential tests for the plan-compiled engine.

``TraversalLaunch(engine="compiled")`` (the default) runs the
plan-compiled op program with frontier compaction;
``engine="interp"`` keeps the original per-step AST interpreter.  The
two must be *bit-identical* on everything the simulator measures:
simulated stats, per-point/per-warp traversal lengths, visit logs, and
application outputs.  Speed without equivalence is a bug, not a result
— these tests are the proof side of ``benchmarks/perf``.

Also covers the compile pass itself (repro.core.compile), the
compaction trigger, and the validate gating (per-step pop validation
defaults on exactly when chaos faults are armed).
"""

import numpy as np
import pytest

from repro.core.compile import (
    BRANCH_PREDICATE,
    BRANCH_VOTE,
    TAG_COND,
    TAG_CONTINUE,
    TAG_PUSH,
    TAG_UPDATE,
    compile_kernel,
    program_for,
)
from repro.gpusim.faults import BatchFaultPlan
from repro.gpusim.executors import (
    AutoropesExecutor,
    LockstepExecutor,
    StaticRopesExecutor,
    TraversalLaunch,
)
from repro.gpusim.stack import CorruptedRopeStack

APP_NAMES = ("pc", "knn", "nn", "vp", "bh")


def _launch(app, kernel, device, engine, **kw):
    return TraversalLaunch(
        kernel=kernel,
        tree=app.tree,
        ctx=app.make_ctx(),
        n_points=app.n_points,
        device=device,
        record_visits=True,
        engine=engine,
        **kw,
    )


def _run_pair(app, kernel, exec_cls, device, **kw):
    """Run interp and compiled engines on fresh launches; return both."""
    Li = _launch(app, kernel, device, "interp", **kw)
    ri = exec_cls(Li).run()
    Lc = _launch(app, kernel, device, "compiled", **kw)
    rc = exec_cls(Lc).run()
    return (Li, ri), (Lc, rc)


def _assert_identical(name, pair_i, pair_c):
    Li, ri = pair_i
    Lc, rc = pair_c
    di, dc = ri.stats.as_dict(), rc.stats.as_dict()
    diff = {k: (di[k], dc[k]) for k in di if di[k] != dc[k]}
    assert not diff, f"{name}: compiled engine changed simulated stats: {diff}"
    np.testing.assert_array_equal(
        ri.nodes_per_point, rc.nodes_per_point, err_msg=name
    )
    np.testing.assert_array_equal(
        ri.nodes_per_warp, rc.nodes_per_warp, err_msg=name
    )
    np.testing.assert_array_equal(
        ri.longest_member_per_warp, rc.longest_member_per_warp, err_msg=name
    )
    assert ri.timing.time_ms == rc.timing.time_ms, name
    # Same steps, same visits, in the same order.
    assert len(ri.visits) == len(rc.visits), name
    for (pi, ni), (pc_, nc) in zip(ri.visits, rc.visits):
        np.testing.assert_array_equal(pi, pc_, err_msg=name)
        np.testing.assert_array_equal(ni, nc, err_msg=name)
    # Application outputs, bit for bit.
    for key in Li.ctx.out:
        np.testing.assert_array_equal(
            Li.ctx.out[key], Lc.ctx.out[key], err_msg=f"{name}:{key}"
        )


class TestAutoropesEquivalence:
    @pytest.mark.parametrize("name", APP_NAMES)
    def test_engines_identical(self, name, all_apps, compiled_apps, device4):
        app = all_apps[name]
        pi, pc_ = _run_pair(
            app, compiled_apps[name].autoropes, AutoropesExecutor, device4
        )
        _assert_identical(f"autoropes/{name}", pi, pc_)


class TestLockstepEquivalence:
    @pytest.mark.parametrize("name", APP_NAMES)
    def test_engines_identical(self, name, all_apps, compiled_apps, device4):
        app = all_apps[name]
        pi, pc_ = _run_pair(
            app, compiled_apps[name].lockstep, LockstepExecutor, device4
        )
        _assert_identical(f"lockstep/{name}", pi, pc_)

    @pytest.mark.parametrize("name", ("pc", "knn"))
    def test_engines_identical_warp32(
        self, name, all_apps, compiled_apps, device32
    ):
        app = all_apps[name]
        pi, pc_ = _run_pair(
            app, compiled_apps[name].lockstep, LockstepExecutor, device32
        )
        _assert_identical(f"lockstep32/{name}", pi, pc_)


class TestStepTraceEquivalence:
    """The telemetry layer samples StepTrace off live launches; the
    compiled engine must produce the *same* per-step dynamics the
    interpreter does — not just the same totals — or sampled launch
    spans would change meaning with the engine knob."""

    @pytest.mark.parametrize("name", APP_NAMES)
    def test_lockstep_traces_identical(self, name, all_apps, compiled_apps,
                                       device4):
        app = all_apps[name]
        pi, pc_ = _run_pair(
            app, compiled_apps[name].lockstep, LockstepExecutor, device4,
            trace=True,
        )
        (_, ri), (_, rc) = pi, pc_
        ai, ac = ri.trace.as_arrays(), rc.trace.as_arrays()
        assert len(ri.trace) == len(rc.trace), name
        for key in ai:
            np.testing.assert_array_equal(
                ai[key], ac[key], err_msg=f"trace/{name}:{key}"
            )

    @pytest.mark.parametrize("name", APP_NAMES)
    def test_autoropes_traces_identical(self, name, all_apps, compiled_apps,
                                        device4):
        app = all_apps[name]
        pi, pc_ = _run_pair(
            app, compiled_apps[name].autoropes, AutoropesExecutor, device4,
            trace=True,
        )
        (_, ri), (_, rc) = pi, pc_
        ai, ac = ri.trace.as_arrays(), rc.trace.as_arrays()
        for key in ai:
            np.testing.assert_array_equal(
                ai[key], ac[key], err_msg=f"trace/{name}:{key}"
            )

    def test_sample_events_decimation(self, pc_app, compiled_apps, device4):
        L = _launch(pc_app, compiled_apps["pc"].lockstep, device4,
                    "compiled", trace=True)
        trace = LockstepExecutor(L).run().trace
        n = len(trace)
        assert n > 8
        events = trace.sample_events(8)
        assert len(events) <= 8
        steps = [e["step"] for e in events]
        assert steps == sorted(set(steps))
        assert steps[0] == 0 and steps[-1] == n - 1
        for e in events:
            assert e["active_warps"] == trace.active_warps[e["step"]]
        # Degenerate budgets.
        assert trace.sample_events(0) == []
        assert len(trace.sample_events(10 ** 6)) == n


class TestStaticRopesEquivalence:
    def test_engines_identical(self, pc_app, compiled_apps, device4):
        # Static ropes only accept unguided traversals; pc qualifies.
        pi, pc_ = _run_pair(
            pc_app, compiled_apps["pc"].autoropes, StaticRopesExecutor, device4
        )
        _assert_identical("ropes/pc", pi, pc_)


class TestCompaction:
    """Frontier compaction must be invisible to everything measured."""

    @pytest.mark.parametrize("name", APP_NAMES)
    def test_disabled_vs_enabled(self, name, all_apps, compiled_apps, device4):
        app = all_apps[name]
        kernel = compiled_apps[name].lockstep
        Lo = _launch(app, kernel, device4, "compiled", compact_threshold=0.0)
        ro = LockstepExecutor(Lo).run()
        Lc = _launch(app, kernel, device4, "compiled", compact_threshold=0.9)
        rc = LockstepExecutor(Lc).run()
        _assert_identical(f"compact/{name}", (Lo, ro), (Lc, rc))

    def test_compaction_actually_fires(self, pc_app, compiled_apps, device4,
                                       monkeypatch):
        L = _launch(pc_app, compiled_apps["pc"].lockstep, device4, "compiled",
                    compact_threshold=0.9)
        ex = LockstepExecutor(L)
        compactions = []
        real = type(ex)._compact_rows

        def spy(self, sel):
            compactions.append(int(sel.sum()))
            return real(self, sel)

        monkeypatch.setattr(type(ex), "_compact_rows", spy)
        ex.run()
        assert compactions, "long-tailed pc traversal never compacted"
        # Each compaction strictly narrows the live row set.
        assert all(c >= 1 for c in compactions)

    def test_threshold_validation(self, pc_app, compiled_apps, device4):
        with pytest.raises(ValueError):
            _launch(pc_app, compiled_apps["pc"].lockstep, device4,
                    "compiled", compact_threshold=1.5)


class TestCompiledProgram:
    def test_program_memoized_on_kernel(self, compiled_apps):
        k = compiled_apps["pc"].autoropes
        assert program_for(k) is program_for(k)

    def test_every_kernel_compiles(self, compiled_apps):
        for name, compiled in compiled_apps.items():
            for kernel in (compiled.autoropes, compiled.lockstep):
                if kernel is None:
                    continue
                prog = compile_kernel(kernel)
                assert prog.n_ops == sum(1 for _ in prog.walk()), name
                assert prog.lockstep == kernel.lockstep
                for op in prog.walk():
                    assert op.tag in (
                        TAG_COND, TAG_UPDATE, TAG_PUSH, TAG_CONTINUE
                    )
                    if op.tag in (TAG_COND, TAG_UPDATE):
                        assert callable(op.fn), name

    def test_vote_conditions_tagged(self, compiled_apps):
        """Call-set-selecting conditions become vote branches under
        lockstep (Section 4.3); the autoropes kernel predicates them."""
        k = compiled_apps["knn"].lockstep
        votes = [
            op for op in program_for(k).walk()
            if op.tag == TAG_COND and op.branch == BRANCH_VOTE
        ]
        assert votes, "guided knn lockstep kernel must vote"
        k_auto = compiled_apps["knn"].autoropes
        assert all(
            op.branch != BRANCH_VOTE
            for op in program_for(k_auto).walk()
            if op.tag == TAG_COND
        )

    def test_push_order_matches_ast(self, compiled_apps):
        """Compiled push calls preserve the kernel's LIFO push order."""
        from repro.core.autoropes import PushGroup

        for name, compiled in compiled_apps.items():
            k = compiled.autoropes
            ast_pushes = []

            def walk_stmt(s):
                if isinstance(s, PushGroup):
                    ast_pushes.append([c.child.name for c in s.push_order])
                for child in getattr(s, "stmts", ()):
                    walk_stmt(child)
                for attr in ("then", "orelse"):
                    sub = getattr(s, attr, None)
                    if sub is not None:
                        walk_stmt(sub)

            walk_stmt(k.body)
            prog_pushes = [
                [c.child for c in op.calls]
                for op in program_for(k).walk()
                if op.tag == TAG_PUSH
            ]
            assert prog_pushes == ast_pushes, name


class TestValidateGating:
    """Per-step pop validation defaults on exactly when chaos is armed."""

    def test_clean_launch_skips_validation(self, pc_app, compiled_apps,
                                           device4):
        L = _launch(pc_app, compiled_apps["pc"].autoropes, device4, "compiled")
        assert L.validate is False

    def test_armed_chaos_enables_validation(self, pc_app, compiled_apps,
                                            device4):
        L = _launch(
            pc_app, compiled_apps["pc"].autoropes, device4, "compiled",
            fault_plan=BatchFaultPlan(corrupt_stack_at=3),
        )
        assert L.validate is True

    def test_explicit_override_wins(self, pc_app, compiled_apps, device4):
        L = _launch(pc_app, compiled_apps["pc"].autoropes, device4,
                    "compiled", validate=True)
        assert L.validate is True

    @pytest.mark.parametrize("engine", ("interp", "compiled"))
    def test_chaos_run_still_catches_corruption(self, engine, pc_app,
                                                compiled_apps, device4):
        """The optimized engine must not outrun the safety net: a
        corrupted stack under chaos aborts cleanly on both engines."""
        L = _launch(
            pc_app, compiled_apps["pc"].autoropes, device4, engine,
            fault_plan=BatchFaultPlan(corrupt_stack_at=2),
        )
        with pytest.raises(CorruptedRopeStack):
            AutoropesExecutor(L).run()

    @pytest.mark.parametrize("engine", ("interp", "compiled"))
    def test_chaos_corruption_lockstep(self, engine, pc_app, compiled_apps,
                                       device4):
        L = _launch(
            pc_app, compiled_apps["pc"].lockstep, device4, engine,
            fault_plan=BatchFaultPlan(corrupt_stack_at=2),
        )
        with pytest.raises(CorruptedRopeStack):
            LockstepExecutor(L).run()

    def test_engine_name_validated(self, pc_app, compiled_apps, device4):
        with pytest.raises(ValueError):
            _launch(pc_app, compiled_apps["pc"].autoropes, device4, "jit")
