"""Oct-tree builder invariants (Barnes-Hut substrate)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.points.datasets import plummer_bodies
from repro.trees.octree import INTERNAL, LEAF, build_octree


def random_bodies(n, seed=0):
    rng = np.random.default_rng(seed)
    return rng.uniform(-1, 1, size=(n, 3)), rng.uniform(0.5, 2.0, size=n)


class TestStructure:
    def test_body_order_is_permutation(self):
        pos, mass = random_bodies(200)
        b = build_octree(pos, mass, leaf_size=1)
        assert sorted(b.body_order.tolist()) == list(range(200))

    def test_leaves_partition_bodies(self):
        pos, mass = random_bodies(150, seed=1)
        b = build_octree(pos, mass, leaf_size=2)
        t = b.tree
        covered = np.zeros(150, dtype=int)
        for node in range(t.n_nodes):
            if t.arrays["type"][node] == LEAF:
                s = t.arrays["body_start"][node]
                c = t.arrays["body_count"][node]
                covered[b.body_order[s : s + c]] += 1
        assert (covered == 1).all()

    def test_leaf_size_respected(self):
        pos, mass = random_bodies(300, seed=2)
        b = build_octree(pos, mass, leaf_size=4)
        t = b.tree
        leaves = t.arrays["type"] == LEAF
        assert t.arrays["body_count"][leaves].max() <= 4

    def test_internal_nodes_have_children(self):
        pos, mass = random_bodies(100, seed=3)
        b = build_octree(pos, mass)
        t = b.tree
        kid_arrays = [t.children[f"c{i}"] for i in range(8)]
        for node in range(t.n_nodes):
            has_kids = any(k[node] >= 0 for k in kid_arrays)
            assert has_kids == (t.arrays["type"][node] == INTERNAL)

    def test_validates(self):
        pos, mass = random_bodies(64, seed=4)
        build_octree(pos, mass).tree.validate()


class TestCenterOfMass:
    def test_root_com_and_mass(self):
        pos, mass = random_bodies(128, seed=5)
        b = build_octree(pos, mass)
        t = b.tree
        expected_com = (pos * mass[:, None]).sum(axis=0) / mass.sum()
        np.testing.assert_allclose(t.arrays["com"][0], expected_com, rtol=1e-12)
        assert t.arrays["mass"][0] == pytest.approx(mass.sum())

    def test_every_node_com_matches_its_bodies(self):
        pos, mass = random_bodies(100, seed=6)
        b = build_octree(pos, mass, leaf_size=2)
        t = b.tree
        for node in range(t.n_nodes):
            s = t.arrays["body_start"][node]
            c = t.arrays["body_count"][node]
            ids = b.body_order[s : s + c]
            m = mass[ids]
            com = (pos[ids] * m[:, None]).sum(axis=0) / m.sum()
            np.testing.assert_allclose(t.arrays["com"][node], com, rtol=1e-9)
            assert t.arrays["mass"][node] == pytest.approx(m.sum())

    def test_half_width_halves_per_level(self):
        pos, mass = random_bodies(256, seed=7)
        b = build_octree(pos, mass)
        t = b.tree
        for node in range(t.n_nodes):
            for i in range(8):
                c = t.children[f"c{i}"][node]
                if c >= 0:
                    assert t.arrays["half_width"][c] == pytest.approx(
                        t.arrays["half_width"][node] / 2
                    )


class TestEdgeCases:
    def test_coincident_bodies(self):
        pos = np.zeros((20, 3))
        mass = np.ones(20)
        b = build_octree(pos, mass, leaf_size=1, max_depth=8)
        # max_depth stops infinite subdivision; all bodies in leaves.
        t = b.tree
        leaves = t.arrays["type"] == LEAF
        assert t.arrays["body_count"][leaves].sum() == 20

    def test_single_body(self):
        b = build_octree(np.array([[1.0, 2.0, 3.0]]), np.array([5.0]))
        assert b.tree.n_nodes == 1
        assert b.tree.arrays["type"][0] == LEAF

    def test_plummer_input_builds(self):
        bodies = plummer_bodies(n=300, seed=8)
        b = build_octree(bodies.pos, bodies.mass)
        assert b.tree.n_nodes > 300  # interior structure exists

    def test_bad_inputs(self):
        with pytest.raises(ValueError):
            build_octree(np.empty((0, 3)), np.empty(0))
        with pytest.raises(ValueError):
            build_octree(np.zeros((5, 2)), np.ones(5))
        with pytest.raises(ValueError):
            build_octree(np.zeros((5, 3)), np.ones(4))
        with pytest.raises(ValueError):
            build_octree(np.zeros((5, 3)), np.ones(5), leaf_size=0)

    @given(n=st.integers(1, 150), leaf=st.integers(1, 5), seed=st.integers(0, 500))
    @settings(max_examples=25, deadline=None)
    def test_mass_conserved_property(self, n, leaf, seed):
        pos, mass = random_bodies(n, seed)
        b = build_octree(pos, mass, leaf_size=leaf)
        assert b.tree.arrays["mass"][b.tree.root] == pytest.approx(mass.sum())
        assert sorted(b.body_order.tolist()) == list(range(n))
