"""Continuous kernel profiler: attribution, reconciliation, parity.

The profiler's contract has three legs:

* **Zero perturbation** — simulated stats are bit-identical with
  profiling on or off (attribution reads counters, never writes).
* **Reconciliation** — per-op attributed counters sum to the launch
  totals (the step-overhead label absorbs inter-op costs).
* **Engine parity** — the interp baseline and the plan-compiled engine
  produce the same per-op series for the same kernel, so hot-op
  rankings are comparable across the engine knob.
"""

import numpy as np
import pytest

from repro.core.autoropes import Continue, PushGroup
from repro.core.compile import op_label, program_for
from repro.core.ir import If, Update
from repro.gpusim.executors import (
    AutoropesExecutor,
    LockstepExecutor,
    TraversalLaunch,
)
from repro.telemetry import KernelProfiler, LaunchProfile
from repro.telemetry.metrics import MetricsRegistry
from repro.telemetry.profile import (
    OVERHEAD_LABEL,
    PROFILE_COUNTERS,
    depth_map,
    op_cycles,
)

APPS = ("pc", "knn")


def _run_profiled(app, kernel, exec_cls, device, engine):
    prof = LaunchProfile(depth_of=depth_map(app.tree))
    launch = TraversalLaunch(
        kernel=kernel,
        tree=app.tree,
        ctx=app.make_ctx(),
        n_points=app.n_points,
        device=device,
        engine=engine,
        op_profile=prof,
    )
    result = exec_cls(launch).run()
    # Flush the final step's tail (post-note pops / loop bookkeeping)
    # into the overhead label so totals reconcile exactly.
    prof.sync(launch.stats)
    return prof, result


class TestOpLabel:
    def test_compiled_and_interp_labels_agree(self, all_apps, compiled_apps):
        """The compiled program's op table and the AST walk produce the
        same label multiset — the parity the profiler relies on."""
        for name in APPS:
            kernel = compiled_apps[name].lockstep
            prog = program_for(kernel)
            compiled_labels = sorted(label for _, label in prog.op_table())
            interp_labels = sorted(
                op_label(stmt)
                for stmt in kernel.body.walk()
                if isinstance(stmt, (If, Update, PushGroup, Continue))
            )
            assert compiled_labels == interp_labels, name

    def test_unknown_op_rejected(self):
        with pytest.raises(TypeError):
            op_label(object())


class TestDepthMap:
    def test_depths_follow_children(self, all_apps):
        tree = all_apps["pc"].tree
        depth_of = depth_map(tree)
        assert depth_of[tree.root] == 0
        for cname in tree.child_names:
            child = tree.children[cname]
            has = child >= 0
            np.testing.assert_array_equal(
                depth_of[child[has]], depth_of[has] + 1
            )

    def test_cached_on_tree(self, all_apps):
        tree = all_apps["knn"].tree
        assert depth_map(tree) is depth_map(tree)


class TestReconciliation:
    @pytest.mark.parametrize("name", APPS)
    @pytest.mark.parametrize("engine", ("interp", "compiled"))
    def test_per_op_counters_sum_to_launch_totals(
        self, name, engine, all_apps, compiled_apps, device4
    ):
        app = all_apps[name]
        prof, result = _run_profiled(
            app, compiled_apps[name].lockstep, LockstepExecutor, device4,
            engine,
        )
        for i, counter in enumerate(PROFILE_COUNTERS):
            attributed = sum(vec[i] for vec in prof.ops.values())
            total = float(getattr(result.stats, counter))
            assert attributed == pytest.approx(total, rel=1e-9, abs=1e-9), (
                f"{name}/{engine}: {counter} attribution does not "
                f"reconcile ({attributed} != {total})"
            )

    def test_overhead_label_present(self, all_apps, compiled_apps, device4):
        prof, _ = _run_profiled(
            all_apps["pc"], compiled_apps["pc"].lockstep, LockstepExecutor,
            device4, "compiled",
        )
        assert OVERHEAD_LABEL in prof.ops
        # Overhead is bookkeeping, never an executed op.
        assert OVERHEAD_LABEL not in prof.op_visits


class TestZeroPerturbation:
    @pytest.mark.parametrize("variant", ("lockstep", "autoropes"))
    def test_stats_bit_identical_with_profiling(
        self, variant, all_apps, compiled_apps, device4
    ):
        app = all_apps["pc"]
        kernel = getattr(compiled_apps["pc"], variant)
        exec_cls = (
            LockstepExecutor if variant == "lockstep" else AutoropesExecutor
        )
        prof, r_on = _run_profiled(app, kernel, exec_cls, device4, "compiled")
        launch = TraversalLaunch(
            kernel=kernel, tree=app.tree, ctx=app.make_ctx(),
            n_points=app.n_points, device=device4, engine="compiled",
        )
        r_off = exec_cls(launch).run()
        assert r_on.stats.as_dict() == r_off.stats.as_dict()
        assert r_on.timing.time_ms == r_off.timing.time_ms
        np.testing.assert_array_equal(
            r_on.nodes_per_point, r_off.nodes_per_point
        )


class TestEngineParity:
    @pytest.mark.parametrize("name", APPS)
    def test_hot_op_ranking_identical_across_engines(
        self, name, all_apps, compiled_apps, device4
    ):
        """Interp and compiled engines must rank the same ops in the
        same order with the same attributed cycles — the acceptance
        bar for cross-engine profiler comparability."""
        app = all_apps[name]
        kernel = compiled_apps[name].lockstep
        rankings = {}
        for engine in ("interp", "compiled"):
            profiler = KernelProfiler(sample_rate=1, top_k=16)
            prof, _ = _run_profiled(
                app, kernel, LockstepExecutor, device4, engine
            )
            profiler.fold(name, prof, device=device4)
            rankings[engine] = profiler.hot_ops(name)
        ri, rc = rankings["interp"], rankings["compiled"]
        assert [e["op"] for e in ri] == [e["op"] for e in rc], name
        for ei, ec in zip(ri, rc):
            assert ei["cycles"] == pytest.approx(ec["cycles"], rel=1e-9)
            assert ei["visits"] == ec["visits"]

    @pytest.mark.parametrize("name", APPS)
    def test_depth_histogram_identical_across_engines(
        self, name, all_apps, compiled_apps, device4
    ):
        app = all_apps[name]
        kernel = compiled_apps[name].lockstep
        profiles = {
            engine: _run_profiled(
                app, kernel, LockstepExecutor, device4, engine
            )
            for engine in ("interp", "compiled")
        }
        (pi, ri), (pc_, _) = profiles["interp"], profiles["compiled"]
        np.testing.assert_array_equal(pi.depth_visits, pc_.depth_visits)
        np.testing.assert_allclose(pi.depth_lane_visits, pc_.depth_lane_visits)
        # The two histogram layers reconcile with the kernel counters:
        # warp-level visits and per-lane useful visits.
        assert pi.depth_visits.sum() == float(ri.stats.warp_node_visits)
        assert pi.depth_lane_visits.sum() == pytest.approx(
            float(ri.stats.node_visits)
        )

    def test_autoropes_depth_visits_match_point_totals(
        self, all_apps, compiled_apps, device4
    ):
        app = all_apps["pc"]
        prof, result = _run_profiled(
            app, compiled_apps["pc"].autoropes, AutoropesExecutor, device4,
            "compiled",
        )
        # One row = one point in the non-lockstep executor, so visits
        # and lane visits coincide and both equal the useful total.
        np.testing.assert_allclose(prof.depth_visits, prof.depth_lane_visits)
        assert prof.depth_visits.sum() == float(result.stats.node_visits)


class TestKernelProfiler:
    def test_sampling_every_nth_first_always(self):
        profiler = KernelProfiler(sample_rate=3)
        picks = [profiler.should_sample() for _ in range(7)]
        assert picks == [True, False, False, True, False, False, True]
        assert profiler.launches_seen == 7

    def test_validation(self):
        with pytest.raises(ValueError):
            KernelProfiler(sample_rate=0)
        with pytest.raises(ValueError):
            KernelProfiler(top_k=0)

    def test_hot_ops_ranked_and_bounded(self, all_apps, compiled_apps,
                                        device4):
        profiler = KernelProfiler(sample_rate=1, top_k=2)
        prof, _ = _run_profiled(
            all_apps["pc"], compiled_apps["pc"].lockstep, LockstepExecutor,
            device4, "compiled",
        )
        profiler.fold("pc", prof, device=device4)
        hot = profiler.hot_ops("pc")
        assert len(hot) == 2
        assert hot[0]["cycles"] >= hot[1]["cycles"]
        shares = [e["share"] for e in profiler.hot_ops("pc", k=100)]
        assert sum(shares) == pytest.approx(1.0)

    def test_unknown_session_empty(self):
        profiler = KernelProfiler()
        assert profiler.hot_ops("nope") == []
        assert profiler.depth_profile("nope") == {
            "visits": [], "lane_visits": []
        }

    def test_gauges_exported(self, all_apps, compiled_apps, device4):
        registry = MetricsRegistry()
        profiler = KernelProfiler(sample_rate=1, top_k=4, registry=registry)
        assert profiler.should_sample()
        prof, _ = _run_profiled(
            all_apps["knn"], compiled_apps["knn"].lockstep, LockstepExecutor,
            device4, "compiled",
        )
        profiler.fold("knn", prof, device=device4)
        text = registry.expose_text()
        assert "profile_hot_op_cycles" in text
        assert 'session="knn"' in text
        assert "profile_launches_sampled_total" in text
        top = profiler.hot_ops("knn")[0]
        snap = profiler.snapshot()
        assert snap["sessions"]["knn"]["ops"][0]["op"] == top["op"]
        assert snap["launches_sampled"] == 1

    def test_op_cycles_deterministic_without_device(self):
        vec_heavy = [100.0, 0, 0, 50.0, 10.0, 0, 0, 5.0, 0]
        vec_light = [1.0, 0, 0, 1.0, 1.0, 0, 0, 0.0, 0]
        assert op_cycles(vec_heavy) > op_cycles(vec_light)
