"""Static preinstalled ropes: installation invariants and the
stackless executor (the hand-coded baseline of Section 3)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gpusim.executors import (
    AutoropesExecutor,
    StaticRopesExecutor,
    TraversalLaunch,
)
from repro.trees.kdtree import build_kdtree_buckets
from repro.trees.linearize import linearize_left_biased
from repro.trees.ropes import first_children, install_ropes, subtree_sizes


def _tree(n=80, d=3, seed=0, leaf=4):
    data = np.random.default_rng(seed).uniform(0, 1, size=(n, d))
    return linearize_left_biased(build_kdtree_buckets(data, leaf_size=leaf).tree)


class TestInstallation:
    def test_subtree_sizes_sum(self):
        tree = _tree()
        sizes = subtree_sizes(tree)
        assert sizes[tree.root] == tree.n_nodes
        leaves = tree.arrays["is_leaf"]
        assert (sizes[leaves] == 1).all()

    def test_rope_is_next_preorder_after_subtree(self):
        tree = _tree()
        rope = install_ropes(tree)
        sizes = subtree_sizes(tree)
        for node in range(tree.n_nodes):
            expect = node + sizes[node]
            assert rope[node] == (expect if expect < tree.n_nodes else -1)

    def test_rope_chain_from_root_is_empty_tree_skip(self):
        tree = _tree()
        rope = install_ropes(tree)
        assert rope[tree.root] == -1  # skipping the root skips everything

    def test_fig2_property_following_ropes_visits_each_node_once(self):
        """Descend-everywhere traversal via ropes = preorder."""
        tree = _tree()
        rope = install_ropes(tree)
        first = first_children(tree)
        seq = []
        node = tree.root
        while node >= 0:
            seq.append(node)
            node = int(first[node] if first[node] >= 0 else rope[node])
        assert seq == list(range(tree.n_nodes))

    def test_first_child_is_next_in_preorder_layout(self):
        tree = _tree()
        first = first_children(tree)
        interior = first >= 0
        np.testing.assert_array_equal(
            first[interior], np.nonzero(interior)[0] + 1
        )

    @given(seed=st.integers(0, 300), n=st.integers(2, 100), leaf=st.integers(1, 6))
    @settings(max_examples=25, deadline=None)
    def test_rope_skip_property(self, seed, n, leaf):
        """Truncating at any node and following its rope reaches a node
        outside its subtree (or the end)."""
        tree = _tree(n=n, seed=seed, leaf=leaf)
        rope = install_ropes(tree)
        sizes = subtree_sizes(tree)
        for node in range(tree.n_nodes):
            r = rope[node]
            if r >= 0:
                assert not (node <= r < node + sizes[node]) or r == node + sizes[node]


class TestStacklessExecutor:
    def test_matches_autoropes_exactly(self, pc_app, compiled_apps, oracles,
                                        device4):
        launch = TraversalLaunch(
            kernel=compiled_apps["pc"].autoropes, tree=pc_app.tree,
            ctx=pc_app.make_ctx(), n_points=pc_app.n_points, device=device4,
            record_visits=True,
        )
        res = StaticRopesExecutor(launch).run()
        pc_app.check(launch.ctx.out, oracles["pc"])

        launch2 = TraversalLaunch(
            kernel=compiled_apps["pc"].autoropes, tree=pc_app.tree,
            ctx=pc_app.make_ctx(), n_points=pc_app.n_points, device=device4,
            record_visits=True,
        )
        ref = AutoropesExecutor(launch2).run()
        s1, s2 = res.per_point_sequences(), ref.per_point_sequences()
        for p in range(0, pc_app.n_points, 13):
            np.testing.assert_array_equal(s1[p], s2[p])

    def test_no_stack_traffic(self, pc_app, compiled_apps, device4):
        launch = TraversalLaunch(
            kernel=compiled_apps["pc"].autoropes, tree=pc_app.tree,
            ctx=pc_app.make_ctx(), n_points=pc_app.n_points, device=device4,
        )
        res = StaticRopesExecutor(launch).run()
        assert res.stats.stack_ops == 0

        launch2 = TraversalLaunch(
            kernel=compiled_apps["pc"].autoropes, tree=pc_app.tree,
            ctx=pc_app.make_ctx(), n_points=pc_app.n_points, device=device4,
        )
        ref = AutoropesExecutor(launch2).run()
        assert res.stats.global_transactions < ref.stats.global_transactions

    def test_guided_rejected(self, knn_app, compiled_apps, device4):
        launch = TraversalLaunch(
            kernel=compiled_apps["knn"].autoropes, tree=knn_app.tree,
            ctx=knn_app.make_ctx(), n_points=knn_app.n_points, device=device4,
        )
        with pytest.raises(ValueError, match="unguided"):
            StaticRopesExecutor(launch)

    def test_variant_args_rejected(self, bh_app, compiled_apps, device4):
        """BH carries dsq on the stack; the stackless baseline cannot —
        exactly the application-specific tweak the paper says hand-coded
        rope implementations rely on."""
        launch = TraversalLaunch(
            kernel=compiled_apps["bh"].autoropes, tree=bh_app.tree,
            ctx=bh_app.make_ctx(), n_points=bh_app.n_points, device=device4,
        )
        with pytest.raises(ValueError, match="variant arguments"):
            StaticRopesExecutor(launch)
