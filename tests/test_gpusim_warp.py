"""Warp primitive tests: masks, votes, divergence accounting."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.gpusim.stats import KernelStats
from repro.gpusim.warp import (
    WarpIssueAccountant,
    majority_vote,
    pack_mask,
    unpack_mask,
    warp_all,
    warp_any,
)


class TestMaskPacking:
    def test_known_values(self):
        bits = np.array([[True, False, True, False]])
        assert pack_mask(bits)[0] == 0b0101

    def test_all_set(self):
        bits = np.ones((2, 4), dtype=bool)
        np.testing.assert_array_equal(pack_mask(bits), [15, 15])

    @given(
        hnp.arrays(dtype=bool, shape=st.tuples(st.integers(1, 6), st.integers(1, 64)))
    )
    @settings(max_examples=60, deadline=None)
    def test_roundtrip(self, bits):
        words = pack_mask(bits)
        np.testing.assert_array_equal(unpack_mask(words, bits.shape[1]), bits)

    def test_too_wide_rejected(self):
        with pytest.raises(ValueError, match="64"):
            pack_mask(np.ones((1, 65), dtype=bool))
        with pytest.raises(ValueError, match="64"):
            unpack_mask(np.zeros(1, np.uint64), 65)


class TestVotes:
    def test_warp_any_all(self):
        bits = np.array([[True, False], [False, False], [True, True]])
        np.testing.assert_array_equal(warp_any(bits), [True, False, True])
        np.testing.assert_array_equal(warp_all(bits), [False, False, True])

    def test_majority_basic(self):
        choice = np.array([[1, 1, 0, 0], [1, 1, 1, 0]])
        active = np.ones((2, 4), dtype=bool)
        np.testing.assert_array_equal(majority_vote(choice, active), [False, True])

    def test_tie_resolves_to_first_call_set(self):
        choice = np.array([[1, 0]])
        active = np.ones((1, 2), dtype=bool)
        assert not majority_vote(choice, active)[0]

    def test_inactive_lanes_do_not_vote(self):
        choice = np.array([[1, 1, 1, 0]])
        active = np.array([[False, False, True, True]])
        assert not majority_vote(choice, active)[0]  # 1-1 tie -> call set 0

    def test_no_active_lanes(self):
        assert not majority_vote(np.array([[1, 1]]), np.zeros((1, 2), bool))[0]


class TestIssueAccounting:
    def test_full_warp_no_divergence(self):
        stats = KernelStats()
        acc = WarpIssueAccountant(4, stats)
        acc.issue(np.ones((3, 4), dtype=bool), 2.0)
        assert stats.warp_instructions == 6.0
        assert stats.divergent_instructions == 0.0
        assert stats.wasted_lane_fraction == 0.0

    def test_partial_warp_counts_divergence(self):
        stats = KernelStats()
        acc = WarpIssueAccountant(4, stats)
        acc.issue(np.array([[True, True, False, False]]), 1.0)
        assert stats.warp_instructions == 1.0
        assert stats.divergent_instructions == 1.0
        assert stats.wasted_lane_fraction == pytest.approx(0.5)

    def test_idle_warps_issue_nothing(self):
        stats = KernelStats()
        acc = WarpIssueAccountant(4, stats)
        acc.issue(np.zeros((5, 4), dtype=bool))
        assert stats.warp_instructions == 0.0

    def test_warp_uniform_single_lane_column(self):
        stats = KernelStats()
        acc = WarpIssueAccountant(4, stats)
        acc.issue(np.array([[True], [False], [True]]), 1.0)
        assert stats.warp_instructions == 2.0
        assert stats.divergent_instructions == 0.0

    def test_rejects_1d(self):
        acc = WarpIssueAccountant(4, KernelStats())
        with pytest.raises(ValueError, match="2-D"):
            acc.issue(np.ones(4, dtype=bool))
