"""Pipeline driver tests (repro.core.pipeline)."""

import numpy as np
import pytest

from repro.core.lockstep import LockstepNotApplicable
from repro.core.ir import (
    ChildRef,
    CondRef,
    If,
    Recurse,
    Return,
    Seq,
    TraversalSpec,
    Update,
    UpdateRef,
)
from repro.core.pipeline import TransformPipeline
from repro.core.profiling import TraversalSimilarity


def _true(ctx, node, pt, args):
    return np.ones(len(node), dtype=bool)


def _noop(ctx, node, pt, args):
    return None


@pytest.fixture
def guided_unannotated():
    return TransformPipeline().compile(
        TraversalSpec(
            name="g",
            body=If(
                CondRef("closer"),
                Seq(Recurse(ChildRef("left")), Recurse(ChildRef("right"))),
                Seq(Recurse(ChildRef("right")), Recurse(ChildRef("left"))),
            ),
            conditions={"closer": _true},
        )
    )


class TestCompile:
    def test_log_records_stages(self, compiled_apps):
        for name, compiled in compiled_apps.items():
            text = " / ".join(compiled.log)
            assert "autoropes applied" in text, name
            assert "call sets" in text, name

    def test_normalization_logged_for_inorder(self):
        spec = TraversalSpec(
            name="inorder",
            body=Seq(
                Recurse(ChildRef("left")),
                Update(UpdateRef("u")),
                Recurse(ChildRef("right")),
            ),
            updates={"u": _noop},
        )
        compiled = TransformPipeline().compile(spec)
        assert any("normalized" in line for line in compiled.log)
        assert compiled.normalized is not compiled.original

    def test_lockstep_unavailable_reason(self, guided_unannotated):
        assert guided_unannotated.lockstep is None
        assert "CALLSETS_EQUIVALENT" in guided_unannotated.lockstep_unavailable_reason


class TestVariantChoice:
    def test_kernel_accessor(self, compiled_apps):
        pc = compiled_apps["pc"]
        assert pc.kernel(lockstep=False) is pc.autoropes
        assert pc.kernel(lockstep=True) is pc.lockstep

    def test_kernel_accessor_raises_when_unavailable(self, guided_unannotated):
        with pytest.raises(LockstepNotApplicable):
            guided_unannotated.kernel(lockstep=True)

    def test_choose_by_similarity(self, compiled_apps):
        pc = compiled_apps["pc"]
        similar = TraversalSimilarity(0.9, 0.8, 4, threshold=0.5)
        dissimilar = TraversalSimilarity(0.1, 0.0, 4, threshold=0.5)
        assert pc.choose_variant(similar).lockstep
        assert not pc.choose_variant(dissimilar).lockstep

    def test_choose_without_profile_defaults_by_guidance(self, compiled_apps):
        assert compiled_apps["pc"].choose_variant(None).lockstep  # unguided
        assert not compiled_apps["knn"].choose_variant(None).lockstep  # guided

    def test_choose_falls_back_when_no_lockstep(self, guided_unannotated):
        similar = TraversalSimilarity(0.9, 0.8, 4, threshold=0.5)
        assert guided_unannotated.choose_variant(similar) is guided_unannotated.autoropes
