"""Ragged-batch regression tests: launches with n_points % warp_size
!= 0 pad the trailing warp, and the padding lanes must be invisible in
the stats — no phantom divergence, no skew in per-point node averages.

Regression for a bug where `WarpIssueAccountant` compared the active
lane count against the *full* warp width, so a partial warp of
perfectly converged queries was charged divergence for lanes that never
held a query."""

import numpy as np
import pytest

from repro.apps.base import QuerySet
from repro.apps.knn import build_knn_app
from repro.apps.pointcorr import build_pointcorr_app
from repro.core.ir import EvalContext
from repro.core.pipeline import TransformPipeline
from repro.cpusim.recursive import RecursiveInterpreter
from repro.gpusim.executors import (
    AutoropesExecutor,
    LockstepExecutor,
    TraversalLaunch,
)
from repro.points.datasets import random_points


@pytest.fixture(scope="module")
def knn_setup():
    pts = random_points(n=96, dim=2, seed=31).points
    app = build_knn_app(pts, np.arange(len(pts)), k=4, leaf_size=4)
    return app, TransformPipeline().compile(app.spec)


def run(app, kernel, device, n_points, lockstep, coords=None):
    ctx = app.make_ctx()
    if coords is not None:
        # Fresh QuerySet: make_ctx shares the app's query arrays, and
        # the app fixture is module-scoped.
        new_coords = ctx.points.coords.copy()
        new_coords[: len(coords)] = coords
        ctx = EvalContext(
            tree=ctx.tree,
            points=QuerySet(new_coords, ctx.points.orig_ids.copy()),
            out=ctx.out,
            params=ctx.params,
        )
    launch = TraversalLaunch(
        kernel=kernel,
        tree=app.tree,
        ctx=ctx,
        n_points=n_points,
        device=device,
        record_visits=True,
    )
    executor = LockstepExecutor(launch) if lockstep else AutoropesExecutor(launch)
    return launch, executor.run()


class TestPaddingLanesAreInvisible:
    @pytest.mark.parametrize("lockstep", [False, True])
    def test_identical_queries_in_partial_warp_do_not_diverge(
        self, knn_setup, device32, lockstep
    ):
        """4 identical queries fill 4 of 32 lanes: with every live lane
        taking the same path there is no divergence to charge."""
        app, compiled = knn_setup
        same = np.tile(app.queries.coords[0], (4, 1))
        launch, _ = run(
            app,
            compiled.lockstep if lockstep else compiled.autoropes,
            device32,
            n_points=4,
            lockstep=lockstep,
            coords=same,
        )
        assert launch.stats.divergent_instructions == 0
        assert launch.stats.wasted_lane_fraction == 0

    @pytest.mark.parametrize("lockstep", [False, True])
    def test_partial_warp_matches_full_warp_divergence(
        self, knn_setup, device32, lockstep
    ):
        """The same 32 identical queries as 1 full warp vs padded into 2
        warps: the padding must not add divergence."""
        app, compiled = knn_setup
        kernel = compiled.lockstep if lockstep else compiled.autoropes
        same32 = np.tile(app.queries.coords[0], (32, 1))
        full, _ = run(app, kernel, device32, 32, lockstep, coords=same32)
        same40 = np.tile(app.queries.coords[0], (40, 1))
        ragged, _ = run(app, kernel, device32, 40, lockstep, coords=same40)
        assert full.stats.divergent_instructions == 0
        assert ragged.stats.divergent_instructions == 0
        assert ragged.stats.wasted_lane_fraction == 0


class TestRaggedAccounting:
    @pytest.mark.parametrize("n_points", [5, 33, 50])
    @pytest.mark.parametrize("lockstep", [False, True])
    def test_nodes_per_point_has_no_padding_entries(
        self, knn_setup, device32, n_points, lockstep
    ):
        app, compiled = knn_setup
        kernel = compiled.lockstep if lockstep else compiled.autoropes
        _, result = run(app, kernel, device32, n_points, lockstep)
        assert len(result.nodes_per_point) == n_points
        assert (result.nodes_per_point > 0).all()

    def test_avg_nodes_matches_recursive_ground_truth(self, knn_setup, device32):
        """Non-lockstep avg_nodes_per_point for a ragged launch equals
        the recursive interpreter's mean over the *real* points only —
        padding lanes must not drag the average down."""
        app, compiled = knn_setup
        n = 50  # 2 warps, second one 18/32 full
        _, result = run(app, compiled.autoropes, device32, n, lockstep=False)
        interp = RecursiveInterpreter(app.spec, app.tree, app.make_ctx())
        truth = np.mean([len(s) for s in interp.run_points(range(n))])
        assert result.avg_nodes_per_point == pytest.approx(truth)

    def test_lockstep_ragged_warp_ride_average(self, knn_setup, device32):
        """Lockstep nodes_per_point is the warp-ride length (Table 1's
        lockstep semantic); in a ragged launch the trailing warp's
        length must be weighted by its 18 real points, not 32 lanes."""
        app, compiled = knn_setup
        n = 50
        _, result = run(app, compiled.lockstep, device32, n, lockstep=True)
        w = result.nodes_per_warp
        want = (w[0] * 32 + w[1] * (n - 32)) / n
        assert result.avg_nodes_per_point == pytest.approx(want)
        np.testing.assert_array_equal(
            result.nodes_per_point, np.repeat(w, 32)[:n]
        )

    def test_ragged_lockstep_work_expansion_finite(self, knn_setup, device32):
        app, compiled = knn_setup
        _, result = run(app, compiled.lockstep, device32, 50, lockstep=True)
        wexp = result.work_expansion_per_warp()
        assert len(wexp) == 2
        assert np.isfinite(wexp).all() and (wexp >= 1.0).all()

    @pytest.mark.parametrize("lockstep", [False, True])
    def test_ragged_launch_still_correct(self, knn_setup, device32, lockstep):
        """Padding must not corrupt results: ragged kNN matches brute
        force on the live points."""
        app, compiled = knn_setup
        n = 50
        kernel = compiled.lockstep if lockstep else compiled.autoropes
        launch, _ = run(app, kernel, device32, n, lockstep)
        coords = launch.ctx.points.coords
        d = ((coords[:n, None, :] - app.queries.coords[None, :, :]) ** 2).sum(-1)
        d[np.arange(n), launch.ctx.points.orig_ids[:n]] = np.inf  # self
        want = np.sort(d, axis=1)[:, :4]
        np.testing.assert_allclose(
            np.sort(launch.ctx.out["knn_dist"][:n], axis=1), want
        )


class TestPointCorrRagged:
    def test_partial_warp_wasted_fraction_bounded(self, device32):
        """Wasted-lane fraction only counts populated lanes: it can
        never exceed (valid - 1)/warp_size per instruction."""
        pts = random_points(n=40, dim=2, seed=33).points
        app = build_pointcorr_app(pts, np.arange(40), radius=0.2, leaf_size=4)
        compiled = TransformPipeline().compile(app.spec)
        launch, _ = run(app, compiled.lockstep, device32, 40, lockstep=True)
        stats = launch.stats
        assert stats.warp_instructions > 0
        # 8 live lanes in the trailing warp: at most 7/32 of each issue
        # can be wasted there, 31/32 in the full warp.
        assert stats.wasted_lane_fraction <= stats.warp_instructions * (31 / 32)
