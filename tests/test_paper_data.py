"""Sanity tests over the transcribed paper data and the comparison
machinery in the report generator."""

import pytest

from repro.harness.config import BENCHMARKS
from repro.harness.paper_data import (
    PAPER_TABLE1,
    PAPER_TABLE2,
    paper_entry,
    paper_wexp,
)


class TestTable1Data:
    def test_complete_matrix(self):
        """36 rows: 18 benchmark/input pairs x {L, N}."""
        assert len(PAPER_TABLE1) == 36
        for bench, inputs in BENCHMARKS.items():
            for inp in inputs:
                for t in ("L", "N"):
                    assert (bench, inp, t) in PAPER_TABLE1

    def test_lockstep_visits_at_least_nonlockstep(self):
        """The paper's own headline shape holds in its data (excluding
        the garbled PC/Geocity row)."""
        for bench, inputs in BENCHMARKS.items():
            for inp in inputs:
                L = paper_entry(bench, inp, "L")
                N = paper_entry(bench, inp, "N")
                if L.suspect or N.suspect:
                    continue
                assert L.sorted.avg_nodes >= N.sorted.avg_nodes, (bench, inp)
                assert L.unsorted.avg_nodes >= N.unsorted.avg_nodes, (bench, inp)

    def test_nonlockstep_nodes_independent_of_sorting(self):
        """Non-lockstep traversals visit the same nodes regardless of
        point order — visible in the paper's table (N rows have equal
        sorted/unsorted Avg. # Nodes)."""
        for key, entry in PAPER_TABLE1.items():
            if key[2] == "N":
                assert entry.sorted.avg_nodes == entry.unsorted.avg_nodes, key

    def test_positive_times(self):
        for entry in PAPER_TABLE1.values():
            assert entry.sorted.time_ms > 0
            assert entry.unsorted.time_ms > 0

    def test_lookup_missing(self):
        assert paper_entry("bh", "covtype", "L") is None


class TestTable2Data:
    def test_complete(self):
        assert len(PAPER_TABLE2) == 18

    def test_expansion_at_least_one(self):
        for entry in PAPER_TABLE2.values():
            assert entry.sorted_mean >= 1.0
            assert entry.unsorted_mean >= 1.0

    def test_unsorted_grows_except_suspect(self):
        for key, entry in PAPER_TABLE2.items():
            if entry.suspect:
                continue
            assert entry.unsorted_mean >= entry.sorted_mean, key

    def test_suspect_marked(self):
        assert paper_wexp("pc", "geocity").suspect
        assert not paper_wexp("pc", "covtype").suspect


class TestComparison:
    def test_compare_with_paper_renders(self):
        """Run the comparison over a tiny measured subset."""
        from unittest import mock

        from repro.harness.config import TINY
        from repro.harness.report import compare_with_paper
        from repro.harness.runner import ExperimentRunner
        from repro.harness.table1 import table1_rows
        from repro.harness.table2 import table2_rows

        runner = ExperimentRunner(scale=TINY)
        restricted = {"pc": ("random",)}
        with mock.patch("repro.harness.table1.BENCHMARKS", restricted), mock.patch(
            "repro.harness.table2.BENCHMARKS", restricted
        ):
            rows1 = table1_rows(runner)
            rows2 = table2_rows(runner)
        text = compare_with_paper(rows1, rows2)
        assert "agreement" in text
        assert "pc/random" in text
