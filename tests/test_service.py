"""Online traversal service tests: dynamic batching (full/timeout
flushes on the logical clock), plan-cache reuse across sessions,
adaptive backend routing flips under shuffled vs Morton-sorted traffic,
batch spatial sorting reducing modeled time, result correctness against
brute force, and the stats snapshot."""

import dataclasses
import json
import math

import numpy as np
import pytest

from repro.points.datasets import dataset_by_name
from repro.service import (
    BACKENDS,
    DynamicBatcher,
    QueryTicket,
    ServiceConfig,
    ServiceStats,
    TelemetryConfig,
    TraversalMemo,
    TraversalService,
)


def ticket(i, t, coords=(0.0, 0.0)):
    return QueryTicket(
        id=i, session="s", coords=np.asarray(coords, dtype=np.float64), t_submit=t
    )


@pytest.fixture(scope="module")
def geocity512():
    return dataset_by_name("geocity", 512, seed=3).points


@pytest.fixture(scope="module")
def geocity1024():
    return dataset_by_name("geocity", 1024, seed=3).points


def jittered_queries(data, n, seed, scale=0.01):
    """Shuffled near-data queries (the service's natural traffic)."""
    rng = np.random.default_rng(seed)
    q = data[rng.permutation(len(data))][:n]
    return q + rng.normal(scale=scale, size=q.shape)


class TestDynamicBatcher:
    def test_flush_on_full(self):
        b = DynamicBatcher(max_batch=3, max_wait_ms=10.0)
        assert not b.add(ticket(0, 0.0))
        assert not b.add(ticket(1, 0.1))
        assert b.add(ticket(2, 0.2))  # third query fills the batch
        taken = b.take_full(0.2)
        assert [t.id for t in taken] == [0, 1, 2]
        assert b.queue_depth == 0
        assert b.counters.flush_full == 1
        assert b.counters.flush_timeout == 0

    def test_flush_on_timeout_at_window_expiry(self):
        b = DynamicBatcher(max_batch=100, max_wait_ms=2.0)
        b.add(ticket(0, 1.0))
        b.add(ticket(1, 1.5))
        assert b.poll(2.9) is None  # oldest has waited 1.9 < 2.0
        assert b.timeout_deadline() == pytest.approx(3.0)
        taken = b.poll(7.5)  # late poll: window expired at 3.0
        assert [t.id for t in taken] == [0, 1]
        # Waits are stamped at the deadline, not at the (late) poll time.
        assert taken[0].wait_ms == pytest.approx(2.0)
        assert taken[1].wait_ms == pytest.approx(1.5)
        assert b.counters.flush_timeout == 1

    def test_forced_flush_and_empty_takes(self):
        b = DynamicBatcher(max_batch=10, max_wait_ms=1.0)
        assert b.take_all(0.0) is None
        assert b.poll(100.0) is None
        b.add(ticket(0, 0.0))
        taken = b.take_all(0.5)
        assert len(taken) == 1 and taken[0].wait_ms == pytest.approx(0.5)
        assert b.counters.flush_forced == 1


class TestSessionsAndPlanCache:
    def test_plan_cache_hit_on_same_app_and_data(self, geocity512):
        svc = TraversalService(ServiceConfig())
        svc.register("a", app="pc", data=geocity512, radius=0.1, leaf_size=4)
        assert svc.plan_cache.stats().misses == 1
        # Same (app, data, build kwargs) under a new name: cache hit,
        # and the built tree is shared too.
        svc.register("b", app="pc", data=geocity512, radius=0.1, leaf_size=4)
        stats = svc.plan_cache.stats()
        assert (stats.hits, stats.misses) == (1, 1)
        assert svc.registry.get("a").app is svc.registry.get("b").app

    def test_plan_cache_miss_on_different_params(self, geocity512):
        svc = TraversalService(ServiceConfig())
        svc.register("a", app="pc", data=geocity512, radius=0.1, leaf_size=4)
        svc.register("b", app="pc", data=geocity512, radius=0.2, leaf_size=4)
        svc.register("c", app="knn", data=geocity512, k=4, leaf_size=4)
        stats = svc.plan_cache.stats()
        assert (stats.hits, stats.misses) == (0, 3)

    def test_duplicate_name_and_unknown_app_rejected(self, geocity512):
        svc = TraversalService(ServiceConfig())
        svc.register("a", app="nn", data=geocity512)
        with pytest.raises(KeyError, match="already registered"):
            svc.register("a", app="nn", data=geocity512)
        with pytest.raises(KeyError, match="unknown app"):
            svc.register("b", app="octree-magic", data=geocity512)
        with pytest.raises(KeyError, match="no session"):
            svc.registry.get("zzz")


class TestQueryPaths:
    def test_query_results_match_oracle_all_backends(self, geocity512):
        queries = jittered_queries(geocity512, 48, seed=5)
        for backend in BACKENDS:
            cfg = ServiceConfig(max_batch=64, backend=backend)
            svc = TraversalService(cfg)
            sess = svc.register(
                "pc", app="pc", data=geocity512, radius=0.1, leaf_size=4
            )
            tickets = svc.query_many("pc", queries)
            got = np.array([t.result["count"] for t in tickets])
            want = sess.oracle(queries)["count"]
            np.testing.assert_array_equal(got, want)

    def test_knn_single_query_includes_coincident_data_point(self, geocity512):
        # Ad-hoc queries are not dataset members (orig_ids == -1), so a
        # query placed exactly on a data point must find that point.
        svc = TraversalService(ServiceConfig())
        svc.register("knn", app="knn", data=geocity512, k=4, leaf_size=4)
        t = svc.query("knn", geocity512[17])
        assert t.done and t.result["knn_dist"][0] == pytest.approx(0.0)
        assert t.result["knn_id"][0] == 17

    def test_submit_fills_then_dispatches(self, geocity512):
        cfg = ServiceConfig(max_batch=4, max_wait_ms=50.0, backend="cpu")
        svc = TraversalService(cfg)
        svc.register("nn", app="nn", data=geocity512)
        queries = jittered_queries(geocity512, 4, seed=6)
        tickets = [svc.submit("nn", q, now=0.1 * i) for i, q in enumerate(queries)]
        assert all(t.done for t in tickets)  # 4th submit flushed on full
        assert tickets[0].batch_size == 4
        assert svc.stats().flush_full == 1

    def test_advance_flushes_expired_window(self, geocity512):
        cfg = ServiceConfig(max_batch=100, max_wait_ms=2.0, backend="cpu")
        svc = TraversalService(cfg)
        svc.register("nn", app="nn", data=geocity512)
        t = svc.submit("nn", geocity512[0], now=1.0)
        assert svc.advance(2.5) == 0 and not t.done
        assert svc.advance(3.1) == 1 and t.done
        assert t.wait_ms == pytest.approx(2.0)  # stamped at the deadline
        assert t.latency_ms == pytest.approx(2.0 + t.exec_ms)

    def test_clock_must_be_monotone(self, geocity512):
        svc = TraversalService(ServiceConfig())
        svc.register("nn", app="nn", data=geocity512)
        svc.submit("nn", geocity512[0], now=5.0)
        with pytest.raises(ValueError, match="monotone"):
            svc.submit("nn", geocity512[1], now=4.0)

    def test_bad_query_shape_rejected(self, geocity512):
        svc = TraversalService(ServiceConfig())
        svc.register("nn", app="nn", data=geocity512)
        with pytest.raises(ValueError, match="coords"):
            svc.query("nn", [1.0, 2.0, 3.0])


class TestAdaptiveRouting:
    def test_routing_flips_with_batch_sorting(self, geocity1024):
        """Shuffled arrival-order traffic routes non-lockstep; the same
        batch Morton-sorted profiles similar and routes lockstep."""
        queries = jittered_queries(geocity1024, 128, seed=5)
        backends = {}
        for sort in ("arrival", "morton"):
            svc = TraversalService(ServiceConfig(max_batch=128, sort=sort))
            svc.register("pc", app="pc", data=geocity1024, radius=0.1, leaf_size=4)
            tickets = svc.query_many("pc", queries)
            backends[sort] = {t.backend for t in tickets}
        assert backends["arrival"] == {"nonlockstep"}
        assert backends["morton"] == {"lockstep"}

    def test_small_batches_route_to_cpu(self, geocity512):
        svc = TraversalService(ServiceConfig(min_gpu_batch=8))
        svc.register("pc", app="pc", data=geocity512, radius=0.1, leaf_size=4)
        tickets = svc.query_many("pc", jittered_queries(geocity512, 3, seed=7))
        assert {t.backend for t in tickets} == {"cpu"}

    def test_forced_backend_overrides_profiling(self, geocity512):
        svc = TraversalService(ServiceConfig(backend="nonlockstep"))
        svc.register("pc", app="pc", data=geocity512, radius=0.1, leaf_size=4)
        t = svc.query("pc", geocity512[0])
        assert t.backend == "nonlockstep"


class TestSpatialSorting:
    def test_morton_sorting_reduces_modeled_time(self, geocity512):
        """Section 4.4 at batch granularity: Morton-reordering a
        shuffled batch before launch reduces modeled kernel time."""
        queries = jittered_queries(geocity512, 128, seed=5)
        times = {}
        for sort in ("arrival", "morton"):
            cfg = ServiceConfig(max_batch=128, sort=sort, backend="lockstep")
            svc = TraversalService(cfg)
            svc.register("pc", app="pc", data=geocity512, radius=0.1, leaf_size=4)
            svc.query_many("pc", queries)
            times[sort] = svc.stats().total_exec_ms
        assert times["morton"] < times["arrival"]

    def test_tree_sorting_also_reduces_modeled_time(self, geocity512):
        queries = jittered_queries(geocity512, 128, seed=5)
        times = {}
        for sort in ("arrival", "tree"):
            cfg = ServiceConfig(max_batch=128, sort=sort, backend="lockstep")
            svc = TraversalService(cfg)
            svc.register("pc", app="pc", data=geocity512, radius=0.1, leaf_size=4)
            svc.query_many("pc", queries)
            times[sort] = svc.stats().total_exec_ms
        assert times["tree"] < times["arrival"]

    def test_sorting_does_not_change_results(self, geocity512):
        queries = jittered_queries(geocity512, 64, seed=8)
        results = {}
        for sort in ("arrival", "morton", "tree"):
            svc = TraversalService(ServiceConfig(max_batch=64, sort=sort))
            svc.register("knn", app="knn", data=geocity512, k=4, leaf_size=4)
            tickets = svc.query_many("knn", queries)
            results[sort] = np.stack([t.result["knn_dist"] for t in tickets])
        np.testing.assert_allclose(results["morton"], results["arrival"])
        np.testing.assert_allclose(results["tree"], results["arrival"])


class TestStatsSnapshot:
    def test_snapshot_fields(self, geocity512):
        cfg = ServiceConfig(max_batch=32, max_wait_ms=2.0)
        svc = TraversalService(cfg)
        svc.register("pc", app="pc", data=geocity512, radius=0.1, leaf_size=4)
        svc.register("knn", app="knn", data=geocity512, k=4, leaf_size=4)
        svc.query_many("pc", jittered_queries(geocity512, 70, seed=9))
        svc.query_many("knn", jittered_queries(geocity512, 3, seed=10))
        s = svc.stats()
        assert isinstance(s, ServiceStats)
        assert s.sessions == 2
        assert s.queries_submitted == s.queries_completed == 73
        assert s.queue_depth == 0
        assert s.batches == s.flush_full + s.flush_timeout + s.flush_forced
        assert s.flush_full == 2  # 70 pc queries at max_batch=32
        assert set(s.backends) == set(BACKENDS)
        assert sum(b.queries for b in s.backends.values()) == 73
        assert s.total_exec_ms > 0
        assert s.p95_latency_ms >= s.p50_latency_ms >= 0
        assert s.plan_cache.misses == 2
        assert s.backends_exercised >= 1
        # The cpu row must have caught the small batches: the 6-query
        # pc remainder and the 3-query knn batch (both < min_gpu_batch).
        assert s.backends["cpu"].queries == 9
        occupancies = [
            b.mean_occupancy for b in s.backends.values() if b.batches
        ]
        assert all(0 < o <= 1 for o in occupancies)

    def test_snapshot_format_renders(self, geocity512):
        svc = TraversalService(ServiceConfig())
        svc.register("nn", app="nn", data=geocity512)
        svc.query("nn", geocity512[0])
        text = svc.stats().format()
        assert "service stats" in text and "backend" in text
        assert "cpu" in text  # the one backend this single query used
        assert "plan cache" in text

    def test_empty_service_snapshot(self):
        s = TraversalService(ServiceConfig()).stats()
        assert s.batches == 0 and s.queries_submitted == 0
        # None, not NaN: empty aggregates must survive a JSON round-trip.
        assert s.p50_latency_ms is None
        assert s.p95_latency_ms is None


class TestMemoization:
    def test_repeat_query_served_from_memo(self, geocity512):
        svc = TraversalService(ServiceConfig())
        svc.register("nn", app="nn", data=geocity512)
        q = geocity512[7] + 0.003
        t1 = svc.query("nn", q)
        t2 = svc.query("nn", q)
        for key in t1.result:
            np.testing.assert_array_equal(t1.result[key], t2.result[key])
        s = svc.stats()
        assert s.memo.hits == 1 and s.memo.misses == 1
        assert s.memo.entries == 1 and s.memo.stores == 1
        # The hit bypassed batching entirely: one batch, two completions.
        assert s.batches == 1 and s.queries_completed == 2

    def test_memo_serves_copies(self, geocity512):
        svc = TraversalService(ServiceConfig())
        svc.register("nn", app="nn", data=geocity512)
        q = geocity512[3] + 0.001
        t1 = svc.query("nn", q)
        t1.result["nn_dist"][...] = -1.0  # caller scribbles on its copy
        t2 = svc.query("nn", q)
        assert float(t2.result["nn_dist"]) >= 0.0

    def test_capacity_zero_disables(self, geocity512):
        svc = TraversalService(ServiceConfig(memo_capacity=0))
        svc.register("nn", app="nn", data=geocity512)
        q = geocity512[7] + 0.003
        svc.query("nn", q)
        svc.query("nn", q)
        s = svc.stats()
        assert s.memo.hits == 0 and s.memo.misses == 0
        assert s.batches == 2

    def test_refresh_plan_invalidates_entries(self, geocity512):
        svc = TraversalService(ServiceConfig())
        svc.register("nn", app="nn", data=geocity512)
        q = geocity512[7] + 0.003
        svc.query("nn", q)
        svc.registry.refresh_plan("nn")  # epoch bump: stale keys never hit
        svc.query("nn", q)
        s = svc.stats()
        assert s.memo.hits == 0 and s.memo.misses == 2

    def test_quantum_buckets_nearby_queries(self, geocity512):
        svc = TraversalService(ServiceConfig(memo_quantum=0.01))
        svc.register("nn", app="nn", data=geocity512)
        q = geocity512[7] + 0.003
        svc.query("nn", q)
        svc.query("nn", q + 1e-6)  # same cell at quantum 0.01
        assert svc.stats().memo.hits == 1

    def test_fifo_eviction(self):
        m = TraversalMemo(capacity=2)
        for i in range(3):
            m.store(0, np.array([float(i), 0.0]), {"v": np.array([i])})
        snap = m.snapshot()
        assert snap.entries == 2 and snap.evictions == 1
        assert m.lookup(0, np.array([0.0, 0.0])) is None  # oldest evicted
        assert m.lookup(0, np.array([2.0, 0.0])) is not None


class TestEngineKnobs:
    def test_interp_session_matches_compiled(self, geocity512):
        queries = jittered_queries(geocity512, 40, seed=11)
        results = {}
        for engine in ("compiled", "interp"):
            svc = TraversalService(ServiceConfig(memo_capacity=0))
            sess = svc.register(
                "pc", app="pc", data=geocity512, radius=0.1, leaf_size=4,
                engine=engine,
            )
            assert sess.engine == engine
            tickets = svc.query_many("pc", queries)
            results[engine] = np.array([t.result["count"] for t in tickets])
        np.testing.assert_array_equal(results["compiled"], results["interp"])

    def test_session_knobs_override_config(self, geocity512):
        svc = TraversalService(ServiceConfig(engine="interp",
                                             compact_threshold=0.5))
        default = svc.register("a", app="nn", data=geocity512)
        override = svc.register(
            "b", app="nn", data=geocity512, engine="compiled",
            compact_threshold=0.7,
        )
        assert default.engine is None and default.compact_threshold is None
        assert override.engine == "compiled"
        assert override.compact_threshold == 0.7
        # Knobs are per-session, not part of the plan fingerprint.
        assert svc.stats().plan_cache.hits == 1

    def test_invalid_knobs_rejected(self, geocity512):
        with pytest.raises(ValueError, match="engine"):
            ServiceConfig(engine="jit")
        with pytest.raises(ValueError, match="compact"):
            ServiceConfig(compact_threshold=1.5)
        svc = TraversalService(ServiceConfig())
        with pytest.raises(ValueError, match="engine"):
            svc.register("x", app="nn", data=geocity512, engine="jit")
        with pytest.raises(ValueError, match="compact"):
            svc.register("y", app="nn", data=geocity512,
                         compact_threshold=-0.1)


def _assert_no_nan(obj, path="$"):
    if isinstance(obj, float):
        assert math.isfinite(obj), f"non-finite float at {path}"
    elif isinstance(obj, dict):
        for k, v in obj.items():
            _assert_no_nan(v, f"{path}.{k}")
    elif isinstance(obj, (list, tuple)):
        for i, v in enumerate(obj):
            _assert_no_nan(v, f"{path}[{i}]")


class TestSnapshotRoundTrip:
    def test_to_dict_round_trips_with_telemetry(self, geocity512):
        cfg = ServiceConfig(
            max_batch=16, max_wait_ms=2.0,
            telemetry=TelemetryConfig(enabled=True, step_events=8),
        )
        svc = TraversalService(cfg)
        svc.register("pc", app="pc", data=geocity512, radius=0.1, leaf_size=4)
        queries = jittered_queries(geocity512, 40, seed=12)
        svc.query_many("pc", queries)
        svc.query("pc", queries[0])  # exercise the memo-hit path too
        d = svc.stats().to_dict()
        _assert_no_nan(d)
        blob = json.dumps(d, allow_nan=False)  # strict: no NaN/Infinity
        back = json.loads(blob)
        assert back == d, "to_dict payload not JSON-native"
        # The nested telemetry payload made the trip intact.
        tel = back["telemetry"]
        assert tel["enabled"] is True and tel["spans_recorded"] > 0
        assert "service_queries_total" in tel["metrics"]
        series = tel["metrics"]["service_exec_ms"]["series"]
        assert series and all(math.isfinite(b)
                              for s in series for b in s["bounds"])
        assert back["memo"]["hits"] == 1

    def test_disabled_telemetry_same_shape(self, geocity512):
        svc = TraversalService(ServiceConfig())
        svc.register("nn", app="nn", data=geocity512)
        svc.query("nn", geocity512[0])
        d = svc.stats().to_dict()
        assert json.loads(json.dumps(d, allow_nan=False)) == d
        assert d["telemetry"]["enabled"] is False
        assert d["telemetry"]["metrics"] == {}


class TestServiceConfig:
    def test_validation(self):
        with pytest.raises(ValueError, match="sort"):
            ServiceConfig(sort="random")
        with pytest.raises(ValueError, match="backend"):
            ServiceConfig(backend="tpu")

    def test_with_returns_frozen_copy(self):
        cfg = ServiceConfig(sort="morton")
        arr = cfg.with_(sort="arrival")
        assert arr.sort == "arrival" and cfg.sort == "morton"
        with pytest.raises(dataclasses.FrozenInstanceError):
            cfg.sort = "tree"
