"""Smoke tests: every example script runs end to end.

Examples are sized for human consumption, not CI, so each is executed
in-process with its entry point patched to smaller inputs where the
module structure allows it; otherwise we accept the example's own size
(they all finish in tens of seconds).
"""

import pathlib
import runpy
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).resolve().parent.parent / "examples"


@pytest.mark.parametrize(
    "script",
    ["quickstart.py", "custom_traversal.py"],
)
def test_fast_examples_run(script, capsys):
    runpy.run_path(str(EXAMPLES / script), run_name="__main__")
    out = capsys.readouterr().out
    assert "transformation" in out or "range sums" in out


@pytest.mark.slow
@pytest.mark.parametrize(
    "script",
    [
        "barneshut_demo.py",
        "knn_search.py",
        "divergence_profile.py",
        "service_client.py",
    ],
)
def test_slow_examples_run(script, capsys):
    runpy.run_path(str(EXAMPLES / script), run_name="__main__")
    out = capsys.readouterr().out
    assert len(out) > 100
