"""Stdlib in-process OTLP/JSON collector stub (tests + CI otlp-smoke).

Accepts ``POST /v1/traces``, ``/v1/metrics``, and ``/v1/logs`` with an
OTLP/JSON body, records every batch, and answers ``200
{"partialSuccess": {}}`` like a real collector.  Two uses:

* **in-process** (pytest): ``with OTLPCollectorStub() as stub: ...``
  then assert on ``stub.spans()``;
* **subprocess** (CI): ``python -m tests.otlp_stub --port N --out
  FILE`` appends one JSON line per received batch to FILE, flushing
  after every write, so a SIGKILLed stub still leaves everything it
  acknowledged on disk — the smoke job kills it mid-run on purpose to
  prove the fleet only increments drop counters.
"""

from __future__ import annotations

import argparse
import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import List, Optional


#: accepted OTLP/HTTP signal paths.
SIGNAL_PATHS = ("/v1/traces", "/v1/metrics", "/v1/logs")


class OTLPCollectorStub:
    """Minimal OTLP/JSON three-signal receiver on an OS-assigned port."""

    def __init__(self, host: str = "127.0.0.1", port: int = 0,
                 out_path: Optional[str] = None) -> None:
        self.host = host
        self.port = port
        self.out_path = out_path
        self.batches: List[dict] = []
        self.requests = 0
        self.lock = threading.Lock()
        self._httpd: Optional[ThreadingHTTPServer] = None
        self._thread: Optional[threading.Thread] = None
        self._out = None

    @property
    def endpoint(self) -> str:
        return f"http://{self.host}:{self.port}/v1/traces"

    def start(self) -> "OTLPCollectorStub":
        stub = self
        if self.out_path:
            self._out = open(self.out_path, "a", encoding="utf-8")

        class _Handler(BaseHTTPRequestHandler):
            server_version = "otlp-stub/1.0"
            protocol_version = "HTTP/1.1"

            def do_POST(self) -> None:  # noqa: N802 (http.server API)
                length = int(self.headers.get("Content-Length", 0))
                raw = self.rfile.read(length)
                if self.path.rstrip("/") not in SIGNAL_PATHS:
                    self.send_error(404)
                    return
                try:
                    batch = json.loads(raw)
                except ValueError:
                    self.send_error(400)
                    return
                with stub.lock:
                    stub.requests += 1
                    stub.batches.append(batch)
                    if stub._out is not None:
                        stub._out.write(json.dumps(batch) + "\n")
                        stub._out.flush()
                body = json.dumps({"partialSuccess": {}}).encode()
                self.send_response(200)
                self.send_header("Content-Type", "application/json")
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)

            def log_message(self, fmt, *args) -> None:
                pass

        self._httpd = ThreadingHTTPServer((self.host, self.port), _Handler)
        self._httpd.daemon_threads = True
        self.host, self.port = self._httpd.server_address[:2]
        self._thread = threading.Thread(
            target=self._httpd.serve_forever, name="otlp-stub", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        if self._httpd is not None:
            self._httpd.shutdown()
            self._httpd.server_close()
            self._httpd = None
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
        if self._out is not None:
            self._out.close()
            self._out = None

    def __enter__(self) -> "OTLPCollectorStub":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    def spans(self) -> List[dict]:
        """Every OTLP span received, flattened across batches."""
        with self.lock:
            return flatten_spans(list(self.batches))

    def log_records(self) -> List[dict]:
        """Every OTLP log record received, flattened across batches."""
        with self.lock:
            return flatten_log_records(list(self.batches))

    def metrics(self) -> List[dict]:
        """Every OTLP metric family received, flattened across batches."""
        with self.lock:
            return flatten_metrics(list(self.batches))


def flatten_spans(batches: List[dict]) -> List[dict]:
    """Flatten recorded OTLP batches (e.g. JSONL rows) to span dicts."""
    out: List[dict] = []
    for batch in batches:
        for rs in batch.get("resourceSpans", []):
            for ss in rs.get("scopeSpans", []):
                out.extend(ss.get("spans", []))
    return out


def flatten_log_records(batches: List[dict]) -> List[dict]:
    """Flatten recorded OTLP batches to ``logRecord`` dicts."""
    out: List[dict] = []
    for batch in batches:
        for rl in batch.get("resourceLogs", []):
            for sl in rl.get("scopeLogs", []):
                out.extend(sl.get("logRecords", []))
    return out


def flatten_metrics(batches: List[dict]) -> List[dict]:
    """Flatten recorded OTLP batches to metric-family dicts."""
    out: List[dict] = []
    for batch in batches:
        for rm in batch.get("resourceMetrics", []):
            for sm in rm.get("scopeMetrics", []):
                out.extend(sm.get("metrics", []))
    return out


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(prog="python -m tests.otlp_stub")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=4318)
    parser.add_argument(
        "--out", default=None,
        help="append one JSON line per received batch (flushed "
        "immediately, so a SIGKILL loses nothing acknowledged)",
    )
    args = parser.parse_args(argv)
    stub = OTLPCollectorStub(args.host, args.port, out_path=args.out)
    stub.start()
    print(f"otlp stub listening on {stub.endpoint}", flush=True)
    try:
        threading.Event().wait()
    except KeyboardInterrupt:
        pass
    finally:
        stub.stop()
    return 0


if __name__ == "__main__":
    import sys

    sys.exit(main())
