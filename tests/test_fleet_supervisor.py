"""Self-healing fleet: supervisor policy, ledger replay, fleet chaos.

Three layers, mirroring ``tests/test_fleet.py``:

* **pure units** — restart policy backoff/budget math, supervision
  decisions on a scripted logical clock, session-ledger digests and
  coverage accounting, chaos schedule determinism;
* **integration** — a real router + workers: SIGKILL a worker, heal it
  (respawn + ledger replay + probe + ring rejoin), and prove placement,
  ``/healthz``, the recovery metrics, the flight-recorder span, and the
  drain exit all reflect a healed fleet; eviction when the budget is
  exhausted; partial registration surfaced while a worker is down and
  cleared by the replay;
* **chaos benchmark smoke** — one tiny seeded kill-and-recover run
  must audit clean with at least one healed restart.
"""

import json

import numpy as np
import pytest

from repro.fleet import FleetConfig, FleetRouter
from repro.fleet.chaos import (
    KIND_KILL,
    FleetChaos,
    FleetChaosConfig,
)
from repro.fleet.ledger import (
    STATE_MISSING,
    STATE_OK,
    SessionLedger,
    data_digest,
)
from repro.fleet.router import BREAKER_OPEN, FleetServer
from repro.fleet.supervisor import (
    DECIDE_EVICT,
    DECIDE_RESTART,
    DECIDE_WAIT,
    FleetSupervisor,
    RestartPolicy,
)
from repro.points.datasets import dataset_by_name

N_DATA = 256


# -- restart policy (pure) -------------------------------------------------


def test_restart_policy_backoff_curve():
    policy = RestartPolicy(
        backoff_base_ms=10.0, backoff_factor=2.0, backoff_max_ms=50.0
    )
    assert policy.backoff_ms(0) == 0.0  # first death heals immediately
    assert policy.backoff_ms(1) == 10.0
    assert policy.backoff_ms(2) == 20.0
    assert policy.backoff_ms(3) == 40.0
    assert policy.backoff_ms(4) == 50.0  # capped
    assert policy.backoff_ms(10) == 50.0


def test_restart_policy_validation():
    with pytest.raises(ValueError):
        RestartPolicy(backoff_base_ms=-1)
    with pytest.raises(ValueError):
        RestartPolicy(backoff_factor=0.5)
    with pytest.raises(ValueError):
        RestartPolicy(max_restarts=0)
    with pytest.raises(ValueError):
        RestartPolicy(window_ms=0)


def test_supervisor_first_death_restarts_immediately():
    sup = FleetSupervisor(RestartPolicy(backoff_base_ms=10.0))
    sup.note_death("w0", 100.0, "pipe broke")
    assert sup.decide("w0", 100.0) == DECIDE_RESTART
    sup.note_restarted("w0", 100.0)
    assert sup.dead_since("w0") is None
    assert sup.total_restarts() == 1


def test_supervisor_backoff_applies_after_first_restart():
    sup = FleetSupervisor(RestartPolicy(backoff_base_ms=10.0, max_restarts=5))
    sup.note_death("w0", 0.0, "x")
    assert sup.decide("w0", 0.0) == DECIDE_RESTART
    sup.note_restarted("w0", 0.0)
    # Second death: one restart in window -> 10ms backoff from death.
    sup.note_death("w0", 5.0, "x again")
    assert sup.decide("w0", 5.0) == DECIDE_WAIT
    assert sup.decide("w0", 14.0) == DECIDE_WAIT
    assert sup.decide("w0", 15.0) == DECIDE_RESTART


def test_supervisor_failed_restart_counts_against_budget():
    sup = FleetSupervisor(RestartPolicy(backoff_base_ms=10.0, max_restarts=2))
    sup.note_death("w0", 0.0, "x")
    sup.note_restart_failed("w0", 0.0)
    # Still dead; one budget slot burned, backoff restarts from the
    # failure time.
    assert sup.decide("w0", 5.0) == DECIDE_WAIT
    assert sup.decide("w0", 10.0) == DECIDE_RESTART
    sup.note_restart_failed("w0", 10.0)
    # Budget (2 per window) exhausted -> permanent eviction.
    assert sup.decide("w0", 100.0) == DECIDE_EVICT
    assert sup.is_evicted("w0")
    assert sup.evicted_workers() == ["w0"]
    # Eviction is sticky even after the window would have slid past.
    assert sup.decide("w0", 1e9) == DECIDE_EVICT


def test_supervisor_window_slides():
    sup = FleetSupervisor(
        RestartPolicy(backoff_base_ms=0.0, max_restarts=2, window_ms=100.0)
    )
    for t in (0.0, 10.0):
        sup.note_death("w0", t, "x")
        assert sup.decide("w0", t) == DECIDE_RESTART
        sup.note_restarted("w0", t)
    # Third death inside the window would evict; past it, the old
    # restarts age out and the budget refreshes.
    sup.note_death("w0", 500.0, "x")
    assert sup.decide("w0", 500.0) == DECIDE_RESTART
    assert not sup.is_evicted("w0")


def test_supervisor_snapshot_is_strict_json():
    sup = FleetSupervisor()
    sup.note_death("w1", 3.0, "killed")
    snap = sup.snapshot()
    assert snap["w1"]["deaths"] == 1
    assert snap["w1"]["dead_since_ms"] == 3.0
    json.dumps(snap, allow_nan=False)


# -- session ledger (pure) -------------------------------------------------


def test_data_digest_is_layout_independent():
    rng = np.random.default_rng(0)
    arr = rng.normal(size=(64, 3))
    fortran = np.asfortranarray(arr)
    assert data_digest(arr) == data_digest(fortran)
    assert data_digest(arr) != data_digest(arr + 1e-12)


def test_ledger_records_and_coverage():
    ledger = SessionLedger()
    data = np.arange(12.0).reshape(6, 2)
    record = ledger.begin("s1", "pc", data, {"radius": 0.1}, now_ms=7.0)
    assert record.digest == data_digest(data)
    ledger.mark("s1", "w0", STATE_OK)
    ledger.mark("s1", "w1", "failed: boom")
    assert ledger.names() == ["s1"]
    assert record.ok_workers() == ["w0"]
    assert ledger.partial_registrations(["w0"]) == []
    assert ledger.partial_registrations(["w0", "w1"]) == ["s1"]
    cov = ledger.coverage(["w0", "w1"])
    assert cov["s1"]["missing_on"] == ["w1"] and not cov["s1"]["complete"]
    json.dumps(cov, allow_nan=False)


def test_ledger_mark_worker_lost_flips_ok_to_missing():
    ledger = SessionLedger()
    data = np.zeros((4, 2))
    ledger.begin("a", "pc", data, {})
    ledger.begin("b", "knn", data, {})
    for name in ("a", "b"):
        ledger.mark(name, "w0", STATE_OK)
    ledger.mark("a", "w1", "failed: nope")
    ledger.mark_worker_lost("w0")
    assert ledger.get("a").workers["w0"] == STATE_MISSING
    assert ledger.get("b").workers["w0"] == STATE_MISSING
    # A failed registration is not rewritten as a death.
    assert ledger.get("a").workers["w1"] == "failed: nope"
    # Replay order is registration order.
    assert [r.name for r in ledger.records()] == ["a", "b"]
    assert ledger.forget("a") is True and ledger.forget("a") is False


# -- fleet chaos (pure) ----------------------------------------------------


def test_fleet_chaos_schedule_is_deterministic():
    cfg = FleetChaosConfig(seed=3, p_kill=0.3, p_drop_reply=0.2, p_stall=0.2)

    def drive(chaos):
        for bucket in range(40):
            now = bucket * cfg.bucket_ms
            for w in ("w0", "w1", "w2"):
                chaos.should_kill(w, now)
                chaos.should_drop_reply(w, now)
                chaos.should_stall(w, now)
        return chaos.events

    first = drive(FleetChaos(cfg))
    second = drive(FleetChaos(cfg))
    assert first == second and len(first) > 0
    other = drive(FleetChaos(FleetChaosConfig(seed=4, p_kill=0.3,
                                              p_drop_reply=0.2, p_stall=0.2)))
    assert other != first


def test_fleet_chaos_fires_at_most_once_per_cell():
    cfg = FleetChaosConfig(seed=0, p_kill=1.0, max_kills_per_bucket=99)
    chaos = FleetChaos(cfg)
    assert chaos.should_kill("w0", 0.0) is True
    assert chaos.should_kill("w0", 5.0) is False  # same bucket, same cell
    assert chaos.should_kill("w0", cfg.bucket_ms) is True  # next bucket


def test_fleet_chaos_caps_kills_per_bucket():
    chaos = FleetChaos(FleetChaosConfig(seed=0, p_kill=1.0,
                                        max_kills_per_bucket=1))
    fired = [chaos.should_kill(w, 0.0) for w in ("w0", "w1", "w2")]
    assert fired == [True, False, False]
    assert [e for e in chaos.events if e[0] == KIND_KILL] == [
        (KIND_KILL, "w0", 0)
    ]


def test_fleet_chaos_validation_and_zero_probability():
    with pytest.raises(ValueError):
        FleetChaosConfig(p_kill=1.5)
    with pytest.raises(ValueError):
        FleetChaosConfig(bucket_ms=0)
    with pytest.raises(ValueError):
        FleetChaosConfig(max_kills_per_bucket=0)
    chaos = FleetChaos(FleetChaosConfig(seed=0))  # all probabilities 0
    assert not chaos.should_kill("w0", 0.0)
    assert not chaos.should_drop_reply("w0", 0.0)
    assert not chaos.should_stall("w0", 0.0)
    assert chaos.schedule() == []


# -- integration: heal, evict, replay --------------------------------------


def _fleet(workers=2, **kw) -> FleetRouter:
    cfg = FleetConfig(
        workers=workers,
        pin_cpus=False,
        scatter_threshold=kw.pop("scatter_threshold", 8),
        call_timeout_s=60.0,
        service=kw.pop("service", {"max_batch": 64, "max_wait_ms": 2.0}),
        restart=kw.pop("restart", RestartPolicy(backoff_base_ms=0.0)),
        **kw,
    )
    router = FleetRouter(cfg)
    router.start()
    return router


def _register_geo(router, n=N_DATA, seed=7):
    geo = dataset_by_name("geocity", n, seed=seed)
    router.register("pc-geocity", "pc", geo.points, radius=0.1, leaf_size=4)
    return geo


def test_fleet_heals_killed_worker_with_session_replay():
    router = _fleet(workers=2)
    try:
        geo = _register_geo(router)
        before = {f"k{i}": router.place(f"k{i}") for i in range(100)}

        victim = router.handles["w1"]
        victim.proc.kill()
        victim.proc.join()

        actions = router.heal(now=50.0)
        assert actions == {"w1": "restarted"}
        assert router.live_workers() == ["w0", "w1"]
        assert victim.incarnation == 1

        # Placement restored exactly: same vnode seeds on rejoin.
        after = {k: router.place(k) for k in before}
        assert after == before

        # The replayed shard serves: a batch scattered over both
        # workers resolves every row.
        res = router.submit_many("pc-geocity", geo.points[:24], now=60.0)
        assert len(res) == 24 and all(r["ok"] for r in res)

        # /healthz recovered to healthy and says so.
        health = router.healthz()
        assert health["ok"] and health["workers"]["w1"]["status"] == "ok"
        assert health["checks"]["restarts_total"] == 1
        assert health["checks"]["partial_registrations"] == []

        # Recovery observability: counters, histogram, flight span.
        assert router._m["restarts"].value(worker="w1") == 1
        assert router._m["replays"].value(worker="w1") == 1
        assert router._m["recovery_ms"].state().count == 1
        [span] = router.flight.ring("w1")
        assert span["name"] == "fleet.recover" and span["status"] == "ok"
        assert any(e["name"] == "replayed" for e in span["events"])

        # Ledger shows full coverage again after the replay.
        assert router.ledger.partial_registrations(["w0", "w1"]) == []

        snap = router.statsz()
        assert snap["fleet"]["supervision"]["w1"]["restarts"] == 1
        json.dumps(snap, allow_nan=False)
    finally:
        report = router.drain()
    # All losses were healed: the fleet drains clean, exit 0 semantics.
    assert report["ok"]
    assert report["restarts_total"] == 1
    assert report["workers"]["w1"]["exitcode"] == 0
    assert report["workers"]["w1"]["incarnation"] == 1


def test_fleet_evicts_worker_after_budget_exhausted():
    router = _fleet(
        workers=2,
        restart=RestartPolicy(backoff_base_ms=0.0, max_restarts=1,
                              window_ms=1e9),
    )
    try:
        _register_geo(router)
        victim = router.handles["w1"]
        victim.proc.kill()
        victim.proc.join()
        assert router.heal(now=10.0) == {"w1": "restarted"}

        # Second death: the 1-restart budget is spent -> evicted.
        router.handles["w1"].proc.kill()
        router.handles["w1"].proc.join()
        assert router.heal(now=20.0) == {"w1": "evicted"}
        assert router.heal(now=1e8) == {"w1": "evicted"}  # permanent
        assert router.supervisor.evicted_workers() == ["w1"]
        assert router._m["evictions"].value(worker="w1") == 1

        health = router.healthz()
        assert not health["ok"]
        assert health["workers"]["w1"]["status"] == "evicted"
    finally:
        report = router.drain()
    # An evicted worker is an unhealed loss: the drain refuses ok.
    assert not report["ok"]
    assert report["evicted"] == ["w1"]


def test_fleet_partial_registration_surfaced_then_healed():
    router = _fleet(workers=2)
    try:
        # Kill w1 and make the router notice (wire trip), then register
        # while the fleet is degraded.
        victim = router.handles["w1"]
        victim.proc.kill()
        victim.proc.join()
        with pytest.raises(Exception):
            router._call("w1", "ping")
        assert router.handles["w1"].breaker.state == BREAKER_OPEN

        geo = _register_geo(router)
        out = router.register(
            "pc-two", "pc", geo.points[:64], radius=0.1, leaf_size=4
        )
        assert out["workers"] == ["w0"] and not out["complete"]
        assert set(router.sessions) == {"pc-geocity", "pc-two"}

        # /statsz surfaces the gap instead of claiming fleet coverage.
        snap = router.statsz()
        assert snap["fleet"]["partial_registrations"] == []  # w1 not live
        assert snap["fleet"]["session_coverage"]["pc-two"]["workers"]["w1"] \
            == STATE_MISSING

        # Heal: the replay must install BOTH sessions on the new w1.
        assert router.heal(now=30.0) == {"w1": "restarted"}
        assert router._m["replays"].value(worker="w1") == 2
        assert router.ledger.partial_registrations(["w0", "w1"]) == []
        res = router.submit_many("pc-two", geo.points[:16], now=40.0)
        assert all(r["ok"] for r in res)
    finally:
        report = router.drain()
    assert report["ok"]


def test_fleet_register_fails_loudly_with_no_live_workers():
    router = _fleet(workers=1)
    try:
        victim = router.handles["w0"]
        victim.proc.kill()
        victim.proc.join()
        with pytest.raises(Exception):
            router._call("w0", "ping")
        geo = dataset_by_name("geocity", 64, seed=7)
        with pytest.raises(RuntimeError, match="no live worker"):
            router.register("s", "pc", geo.points, radius=0.1, leaf_size=4)
        assert router.sessions == []  # the failed record was forgotten
    finally:
        router.drain()


def test_fleet_stall_chaos_trips_then_reroutes_and_heals():
    # p_stall=1.0: the first routed submit's reply is abandoned without
    # being consumed — the pipe is desynchronized by construction, so
    # recovery MUST replace the process; the chaos-exempt reroute keeps
    # the answer flowing meanwhile.
    router = _fleet(
        workers=2,
        scatter_threshold=0,  # routed path only
        fleet_chaos=FleetChaosConfig(seed=1, p_stall=1.0, bucket_ms=10.0),
    )
    try:
        geo = _register_geo(router)
        res = router.submit_many("pc-geocity", geo.points[:4], now=5.0)
        assert len(res) == 4 and all(r["ok"] for r in res)
        assert router._m["reroutes"].total() == 1
        assert len(router.dead_workers()) == 1
        stalled = router.dead_workers()[0]
        assert router._m["chaos"].value(kind="stall", worker=stalled) == 1

        assert router.heal(now=20.0) == {stalled: "restarted"}
        assert router.healthz()["ok"]
    finally:
        report = router.drain()
    assert report["ok"]


def test_fleet_server_background_healer_recovers_healthz():
    # The serve-mode path: no logical clock driving heal() — the
    # background healer runs on wall-floored time and must bring a
    # SIGKILLed worker back to healthy on its own.
    import time as _time

    router = _fleet(workers=2)
    server = FleetServer(router, heal_interval_s=0.05)
    try:
        server.start()
        _register_geo(router)
        victim = router.handles["w1"]
        victim.proc.kill()
        victim.proc.join()
        deadline = _time.monotonic() + 30.0
        while _time.monotonic() < deadline:
            status, _, body = server.respond("/healthz")
            if status == 200 and json.loads(body)["ok"]:
                break
            _time.sleep(0.1)
        else:
            pytest.fail("healer never brought /healthz back to ok")
        assert router.supervisor.total_restarts() >= 1
        status, _, body = server.respond("/metrics")
        assert 'fleet_restarts_total{worker="w1"}' in body.decode()
    finally:
        report = server.shutdown()
    assert report["ok"]


# -- chaos benchmark smoke -------------------------------------------------


def test_chaos_benchmark_smoke_audits_clean():
    from benchmarks.fleet import run_chaos_benchmark

    report = run_chaos_benchmark(
        workers=2, rounds=10, batch=12, seed=7, n_data=128,
        p_kill=0.25, p_drop_reply=0.0, p_stall=0.0,
        pin_cpus=False, log=lambda *_: None,
    )
    audit = report["audit"]
    assert audit["compared"] == 10 * 2 * 12
    assert audit["lost"] == 0
    assert audit["mismatched"] == 0
    assert audit["oracle_wrong"] == 0
    assert report["recovery"]["restarts"] >= 1
    assert report["recovery"]["session_replays"] >= 1
    assert report["healthz_ok"] and report["drain_ok"]
    json.dumps(report, allow_nan=False)
