"""kd-tree builder invariants (both variants)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.trees.kdtree import build_kdtree_buckets, build_kdtree_points
from repro.trees.linearize import linearize_left_biased


def random_data(n, d, seed=0):
    return np.random.default_rng(seed).uniform(0, 1, size=(n, d))


class TestBucketTree:
    def test_point_order_is_permutation(self):
        b = build_kdtree_buckets(random_data(200, 3), leaf_size=4)
        assert sorted(b.point_order.tolist()) == list(range(200))

    def test_leaves_partition_points(self):
        data = random_data(300, 3, seed=1)
        b = build_kdtree_buckets(data, leaf_size=8)
        t = b.tree
        covered = np.zeros(300, dtype=int)
        for node in range(t.n_nodes):
            if t.arrays["is_leaf"][node]:
                s, c = t.arrays["leaf_start"][node], t.arrays["leaf_count"][node]
                covered[b.point_order[s : s + c]] += 1
        assert (covered == 1).all()

    def test_leaf_size_respected(self):
        b = build_kdtree_buckets(random_data(500, 2, seed=2), leaf_size=8)
        t = b.tree
        leaf_counts = t.arrays["leaf_count"][t.arrays["is_leaf"]]
        assert leaf_counts.max() <= 8
        assert leaf_counts.min() >= 1

    def test_bbox_contains_subtree_points(self):
        data = random_data(256, 3, seed=3)
        b = build_kdtree_buckets(data, leaf_size=4)
        t = b.tree
        for node in range(t.n_nodes):
            s, c = t.arrays["leaf_start"][node], t.arrays["leaf_count"][node]
            sub = data[b.point_order[s : s + c]]
            assert (sub >= t.arrays["bbox_min"][node] - 1e-12).all()
            assert (sub <= t.arrays["bbox_max"][node] + 1e-12).all()

    def test_split_separates_children(self):
        data = random_data(256, 3, seed=4)
        b = build_kdtree_buckets(data, leaf_size=4)
        t = b.tree
        for node in range(t.n_nodes):
            if t.arrays["is_leaf"][node]:
                continue
            dim = t.arrays["split_dim"][node]
            val = t.arrays["split_val"][node]
            l, r = t.children["left"][node], t.children["right"][node]
            assert t.arrays["bbox_max"][l][dim] <= val + 1e-12
            assert t.arrays["bbox_min"][r][dim] >= val - 1e-12

    def test_internal_nodes_have_both_children(self):
        b = build_kdtree_buckets(random_data(100, 2, seed=5), leaf_size=2)
        t = b.tree
        internal = ~t.arrays["is_leaf"]
        assert (t.children["left"][internal] >= 0).all()
        assert (t.children["right"][internal] >= 0).all()

    def test_duplicate_points_terminate(self):
        data = np.zeros((50, 3))
        b = build_kdtree_buckets(data, leaf_size=4)
        assert b.tree.arrays["is_leaf"][0]  # zero-width box -> one leaf

    def test_bad_inputs(self):
        with pytest.raises(ValueError):
            build_kdtree_buckets(np.empty((0, 3)))
        with pytest.raises(ValueError):
            build_kdtree_buckets(np.zeros(5))
        with pytest.raises(ValueError):
            build_kdtree_buckets(random_data(10, 2), leaf_size=0)

    @given(
        n=st.integers(2, 120),
        d=st.integers(1, 5),
        leaf=st.integers(1, 9),
        seed=st.integers(0, 1000),
    )
    @settings(max_examples=30, deadline=None)
    def test_structure_property(self, n, d, leaf, seed):
        data = random_data(n, d, seed)
        b = build_kdtree_buckets(data, leaf_size=leaf)
        b.tree.validate()
        lin = linearize_left_biased(b.tree)
        assert lin.n_nodes == b.tree.n_nodes
        assert sorted(b.point_order.tolist()) == list(range(n))


class TestPointTree:
    def test_every_point_is_one_node(self):
        raw = build_kdtree_points(random_data(127, 3, seed=6))
        assert raw.n_nodes == 127
        assert sorted(raw.arrays["point_id"].tolist()) == list(range(127))

    def test_bst_invariant_along_split_dims(self):
        data = random_data(200, 2, seed=7)
        raw = build_kdtree_points(data)

        def check(node):
            dim = raw.arrays["split_dim"][node]
            val = raw.arrays["point"][node, dim]
            l, r = raw.children["left"][node], raw.children["right"][node]
            if l >= 0:
                sub = _subtree_points(raw, l)
                assert (sub[:, dim] <= val + 1e-12).all()
                check(l)
            if r >= 0:
                sub = _subtree_points(raw, r)
                assert (sub[:, dim] >= val - 1e-12).all()
                check(r)

        check(0)

    def test_balanced_depth(self):
        raw = build_kdtree_points(random_data(255, 3, seed=8))
        lin = linearize_left_biased(raw)
        assert lin.depth <= 9  # perfectly balanced would be 8

    def test_bad_inputs(self):
        with pytest.raises(ValueError):
            build_kdtree_points(np.empty((0, 2)))


def _subtree_points(raw, node):
    out = []
    stack = [node]
    while stack:
        cur = stack.pop()
        out.append(raw.arrays["point"][cur])
        for name in ("left", "right"):
            c = raw.children[name][cur]
            if c >= 0:
                stack.append(int(c))
    return np.array(out)
