"""Unit tests for the traversal IR (repro.core.ir)."""

import numpy as np
import pytest

from repro.core.ir import (
    ArgDecl,
    ChildRef,
    CondRef,
    EvalContext,
    If,
    Recurse,
    Return,
    Seq,
    TraversalSpec,
    Update,
    UpdateRef,
    number_call_sites,
    recurse_sites,
)


def _true(ctx, node, pt, args):
    return np.ones(len(node), dtype=bool)


def _noop(ctx, node, pt, args):
    return None


def make_spec(body, **kw):
    defaults = dict(
        conditions={"c": _true, "c2": _true},
        updates={"u": _noop, "u2": _noop},
    )
    defaults.update(kw)
    return TraversalSpec(name="t", body=body, **defaults)


class TestSeq:
    def test_flattens_nested_seqs(self):
        s = Seq(Seq(Return(), Update(UpdateRef("u"))), Return())
        assert len(s.stmts) == 3
        assert all(not isinstance(x, Seq) for x in s.stmts)

    def test_empty_seq(self):
        assert Seq().stmts == ()

    def test_walk_preorder(self):
        inner = Update(UpdateRef("u"))
        body = Seq(If(CondRef("c"), inner), Return())
        kinds = [type(s).__name__ for s in body.walk()]
        assert kinds == ["Seq", "If", "Update", "Return"]


class TestNumbering:
    def test_sites_numbered_in_preorder(self):
        body = Seq(
            If(
                CondRef("c"),
                Seq(Recurse(ChildRef("left")), Recurse(ChildRef("right"))),
                Seq(Recurse(ChildRef("right")), Recurse(ChildRef("left"))),
            )
        )
        numbered = number_call_sites(body)
        sites = recurse_sites(numbered)
        assert [s.site_id for s in sites] == [0, 1, 2, 3]
        assert [s.child.name for s in sites] == ["left", "right", "right", "left"]

    def test_overrides_preserved(self):
        body = Recurse(ChildRef("left"), arg_overrides=(("a", "r"),))
        numbered = number_call_sites(body)
        assert recurse_sites(numbered)[0].arg_overrides == (("a", "r"),)


class TestValidation:
    def test_unbound_condition_rejected(self):
        with pytest.raises(KeyError, match="unbound condition"):
            TraversalSpec(
                name="t", body=If(CondRef("missing"), Return()), conditions={}
            )

    def test_unbound_update_rejected(self):
        with pytest.raises(KeyError, match="unbound update"):
            TraversalSpec(name="t", body=Update(UpdateRef("missing")), updates={})

    def test_unbound_arg_rule_rejected(self):
        with pytest.raises(KeyError, match="unbound arg rule"):
            TraversalSpec(
                name="t",
                body=Return(),
                args=(ArgDecl("a", 1.0, update="missing"),),
            )

    def test_valid_spec_accepted(self):
        spec = make_spec(Seq(If(CondRef("c"), Return()), Update(UpdateRef("u"))))
        assert spec.name == "t"


class TestArgDecl:
    def test_invariant_classification(self):
        inv = ArgDecl("c", 2.0)
        var = ArgDecl("d", 1.0, update="r")
        assert inv.invariant and not var.invariant

    def test_variant_vs_invariant_split(self):
        spec = make_spec(
            Return(),
            args=(ArgDecl("a", 0.0, update="r"), ArgDecl("b", 1.0)),
            arg_rules={"r": lambda c, n, p, a: a["a"]},
        )
        assert [a.name for a in spec.variant_args] == ["a"]
        assert [a.name for a in spec.invariant_args] == ["b"]

    def test_initial_args_shapes_and_values(self):
        spec = make_spec(
            Return(),
            args=(ArgDecl("a", 3.5, update="r"), ArgDecl("b", -1.0)),
            arg_rules={"r": lambda c, n, p, a: a["a"]},
        )
        init = spec.initial_args(5)
        assert set(init) == {"a", "b"}
        np.testing.assert_array_equal(init["a"], np.full(5, 3.5))
        np.testing.assert_array_equal(init["b"], np.full(5, -1.0))


class TestEvaluation:
    def test_eval_condition_coerces_to_bool(self):
        spec = make_spec(
            If(CondRef("ints"), Return()),
            conditions={"ints": lambda c, n, p, a: n % 2},
        )
        ctx = EvalContext(tree=None, points=None)
        got = spec.eval_condition(
            CondRef("ints"), ctx, np.array([1, 2, 3]), np.zeros(3, int), {}
        )
        assert got.dtype == bool
        np.testing.assert_array_equal(got, [True, False, True])

    def test_eval_update_dispatches(self):
        hits = []
        spec = make_spec(
            Update(UpdateRef("rec")),
            updates={"rec": lambda c, n, p, a: hits.append(len(n))},
        )
        ctx = EvalContext(tree=None, points=None)
        spec.eval_update(UpdateRef("rec"), ctx, np.arange(4), np.arange(4), {})
        assert hits == [4]

    def test_duplicate_site_ids_rejected(self):
        # __post_init__ renumbers sites, so build a valid spec first and
        # then tamper with its body to simulate a corrupted rewrite.
        s = make_spec(Seq(Recurse(ChildRef("left")), Recurse(ChildRef("right"))))
        s.body = Seq(
            Recurse(ChildRef("left"), site_id=0),
            Recurse(ChildRef("right"), site_id=0),
        )
        with pytest.raises(ValueError, match="duplicate call-site ids"):
            s.validate()


class TestRefs:
    def test_condref_defaults(self):
        c = CondRef("x")
        assert c.point_dependent and c.reads == () and c.cost == 1.0

    def test_childref_defaults_point_independent(self):
        assert not ChildRef("left").point_dependent
