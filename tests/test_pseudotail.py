"""Pseudo-tail-recursion normalization tests (Section 3.2)."""

import numpy as np
import pytest

from repro.apps.base import QuerySet
from repro.core.autoropes import apply_autoropes
from repro.core.callset import analyze_call_sets
from repro.core.ir import (
    ChildRef,
    number_call_sites,
    CondRef,
    EvalContext,
    If,
    Recurse,
    Return,
    Seq,
    TraversalSpec,
    Update,
    UpdateRef,
)
from repro.core.pseudotail import (
    NotPseudoTailRecursive,
    PEND_ARG,
    PARENT_ARG,
    is_pseudo_tail_recursive,
    normalize_to_pseudo_tail,
    tail_duplicate,
)
from repro.cpusim.recursive import RecursiveInterpreter
from repro.trees.node import FieldGroup, RawTree
from repro.trees.linearize import linearize_left_biased


def _full_binary_tree(depth: int):
    """A complete binary tree with per-node payload = node id."""
    n = 2**depth - 1
    left = np.full(n, -1, dtype=np.int64)
    right = np.full(n, -1, dtype=np.int64)
    for i in range(n):
        l, r = 2 * i + 1, 2 * i + 2
        if l < n:
            left[i] = l
        if r < n:
            right[i] = r
    raw = RawTree(
        child_names=("left", "right"),
        children={"left": left, "right": right},
        arrays={"val": np.arange(n, dtype=np.float64)},
        groups=(FieldGroup("hot", 8), FieldGroup("cold", 8)),
    ).validate()
    return linearize_left_biased(raw)


def _never(ctx, node, pt, args):
    return np.zeros(len(node), dtype=bool)


def _record(ctx, node, pt, args):
    for n, p in zip(node, pt):
        ctx.out["log"].append((int(p), int(n)))


class TestTailDuplicate:
    def test_pushes_tail_into_branch_arms(self):
        body = number_call_sites(
            Seq(
                If(
                    CondRef("c"),
                    Recurse(ChildRef("left")),
                    Recurse(ChildRef("right")),
                ),
                Recurse(ChildRef("left")),
            )
        )
        # Pseudo-tail by the CFG definition (only calls follow calls on
        # every path) — but structurally the trailing call is outside
        # the branch, which tail duplication canonicalizes away.
        assert is_pseudo_tail_recursive(body)
        dup = number_call_sites(tail_duplicate(body))
        assert is_pseudo_tail_recursive(dup)
        # Paths (and hence call sets) are preserved.
        a_orig = analyze_call_sets(body)
        a_dup = analyze_call_sets(dup)
        orig_children = sorted(
            tuple(c.name for c in cs.children) for cs in a_orig.call_sets
        )
        dup_children = sorted(
            tuple(c.name for c in cs.children) for cs in a_dup.call_sets
        )
        assert orig_children == dup_children == [
            ("left", "left"),
            ("right", "left"),
        ]

    def test_no_change_needed_is_stable(self):
        body = Seq(Recurse(ChildRef("left")), Recurse(ChildRef("right")))
        dup = number_call_sites(tail_duplicate(body))
        a = analyze_call_sets(dup)
        assert a.pseudo_tail_recursive
        assert a.call_sets[0].sites == (0, 1)

    def test_unreachable_tail_after_return_dropped(self):
        body = Seq(Return(), Update(UpdateRef("dead")))
        dup = tail_duplicate(body)
        assert all(not isinstance(s, Update) for s in dup.walk())


class TestNormalizeErrors:
    def test_update_after_last_call_rejected(self):
        spec = TraversalSpec(
            name="bad",
            body=Seq(Recurse(ChildRef("left")), Update(UpdateRef("u"))),
            updates={"u": _record},
        )
        with pytest.raises(NotPseudoTailRecursive, match="after the last"):
            normalize_to_pseudo_tail(spec)

    def test_already_pseudo_tail_gains_no_synthetic_args(self):
        spec = TraversalSpec(
            name="ok",
            body=Seq(
                If(CondRef("never"), Return()),
                Recurse(ChildRef("left")),
                Recurse(ChildRef("right")),
            ),
            conditions={"never": _never},
        )
        norm = normalize_to_pseudo_tail(spec)
        assert [a.name for a in norm.args] == []
        assert not norm.visits_null_children


class TestInOrderPushDown:
    """The in-order traversal (update between calls) must produce
    identical updates — for every point, in the same order — after
    normalization."""

    def _make_spec(self, body):
        return TraversalSpec(
            name="inorder",
            body=body,
            conditions={"never": _never},
            updates={"u": _record},
        )

    def _run(self, spec, tree, n_pts=3):
        ctx = EvalContext(
            tree=tree,
            points=QuerySet(coords=np.zeros((n_pts, 1)), orig_ids=np.arange(n_pts)),
            out={"log": []},
        )
        interp = RecursiveInterpreter(spec, tree, ctx)
        for p in range(n_pts):
            interp.run_point(p)
        return ctx.out["log"]

    def test_inorder_update_order_preserved(self):
        tree = _full_binary_tree(4)
        body = Seq(
            If(CondRef("never"), Return()),
            Recurse(ChildRef("left")),
            Update(UpdateRef("u")),
            Recurse(ChildRef("right")),
        )
        spec = self._make_spec(body)
        assert not is_pseudo_tail_recursive(spec)
        norm = normalize_to_pseudo_tail(spec)
        assert is_pseudo_tail_recursive(norm)
        assert norm.visits_null_children
        arg_names = {a.name for a in norm.args}
        assert {PEND_ARG, PARENT_ARG} <= arg_names

        log_orig = self._run(spec, tree)
        log_norm = self._run(norm, tree)
        assert log_orig == log_norm
        # in-order over a complete tree = sorted node ids in DFS layout?
        # Left-biased linearization is preorder, so just check every node
        # appears exactly once per point.
        n = tree.n_nodes
        per_point = [n_ for (p, n_) in log_orig if p == 0]
        assert sorted(per_point) == list(range(n))

    def test_normalized_autoropes_applies(self):
        tree = _full_binary_tree(3)
        body = Seq(
            Recurse(ChildRef("left")),
            Update(UpdateRef("u")),
            Recurse(ChildRef("right")),
        )
        norm = normalize_to_pseudo_tail(self._make_spec(body))
        kernel = apply_autoropes(norm)
        assert kernel.analysis.pseudo_tail_recursive

    def test_multiple_intervening_updates_rejected(self):
        body = Seq(
            Recurse(ChildRef("left")),
            Update(UpdateRef("u")),
            Update(UpdateRef("u")),
            Recurse(ChildRef("right")),
        )
        with pytest.raises(NotPseudoTailRecursive, match="multiple intervening"):
            normalize_to_pseudo_tail(self._make_spec(body))

    def test_inorder_under_guard_condition(self):
        """Push-down inside an If arm."""
        tree = _full_binary_tree(4)
        body = Seq(
            If(
                CondRef("never"),
                Return(),
                Seq(
                    Recurse(ChildRef("left")),
                    Update(UpdateRef("u")),
                    Recurse(ChildRef("right")),
                ),
            )
        )
        spec = self._make_spec(body)
        norm = normalize_to_pseudo_tail(spec)
        assert self._run(spec, tree) == self._run(norm, tree)
