"""Left-biased linearization tests (Section 5.2 layout)."""

import numpy as np
import pytest

from repro.trees.linearize import linearize_left_biased
from repro.trees.node import FieldGroup, RawTree


def chain_tree():
    """root -> right -> right (a degenerate chain)."""
    return RawTree(
        child_names=("left", "right"),
        children={
            "left": np.array([-1, -1, -1]),
            "right": np.array([1, 2, -1]),
        },
        arrays={"val": np.array([10.0, 20.0, 30.0])},
        groups=(FieldGroup("hot", 8),),
    )


def shuffled_binary_tree():
    """A small tree built in non-DFS id order:

             4
            / \\
           2   0
          / \\
         3   1
    """
    left = np.array([-1, -1, 3, -1, 2])
    right = np.array([-1, -1, 1, -1, 0])
    return RawTree(
        child_names=("left", "right"),
        children={"left": left, "right": right},
        arrays={"val": np.arange(5, dtype=np.float64)},
        groups=(FieldGroup("hot", 8), FieldGroup("cold", 8)),
        root=4,
    )


class TestOrdering:
    def test_root_becomes_zero(self):
        lin = linearize_left_biased(shuffled_binary_tree())
        assert lin.root == 0
        assert lin.arrays["val"][0] == 4.0

    def test_preorder_left_biased(self):
        lin = linearize_left_biased(shuffled_binary_tree())
        # DFS preorder: 4, 2, 3, 1, 0 -> payloads in that order.
        np.testing.assert_array_equal(lin.arrays["val"], [4, 2, 3, 1, 0])

    def test_left_child_is_adjacent(self):
        """Left-biased layout: a node's first child is the next node."""
        lin = linearize_left_biased(shuffled_binary_tree())
        for node in range(lin.n_nodes):
            l = lin.children["left"][node]
            if l >= 0:
                assert l == node + 1

    def test_children_remapped_consistently(self):
        raw = shuffled_binary_tree()
        lin = linearize_left_biased(raw)
        # old edge 2 -(left)-> 3 must survive under new ids.
        new2, new3 = lin.new_id_of[2], lin.new_id_of[3]
        assert lin.children["left"][new2] == new3

    def test_depth(self):
        assert linearize_left_biased(shuffled_binary_tree()).depth == 3
        assert linearize_left_biased(chain_tree()).depth == 3

    def test_chain(self):
        lin = linearize_left_biased(chain_tree())
        np.testing.assert_array_equal(lin.arrays["val"], [10, 20, 30])


class TestChildLookup:
    def test_vectorized_child(self):
        lin = linearize_left_biased(shuffled_binary_tree())
        nodes = np.array([0, 1, -1])
        out = lin.child("left", nodes)
        assert out[2] == -1
        assert out[0] == lin.children["left"][0]

    def test_group_lookup(self):
        lin = linearize_left_biased(shuffled_binary_tree())
        assert lin.group("hot").itemsize == 8
        with pytest.raises(KeyError):
            lin.group("nope")


class TestValidation:
    def test_unreachable_node_rejected(self):
        raw = RawTree(
            child_names=("left", "right"),
            children={
                "left": np.array([-1, -1]),
                "right": np.array([-1, -1]),
            },
            arrays={},
            groups=(),
        )
        with pytest.raises(ValueError, match="unreachable"):
            linearize_left_biased(raw)

    def test_double_parent_rejected(self):
        raw = RawTree(
            child_names=("left", "right"),
            children={
                "left": np.array([1, -1]),
                "right": np.array([1, -1]),
            },
            arrays={},
            groups=(),
        )
        with pytest.raises(ValueError, match="multiple parents"):
            linearize_left_biased(raw)

    def test_out_of_range_child_rejected(self):
        raw = RawTree(
            child_names=("left",),
            children={"left": np.array([7])},
            arrays={},
            groups=(),
        )
        with pytest.raises(ValueError, match="out-of-range"):
            raw.validate()

    def test_cycle_to_root_rejected(self):
        raw = RawTree(
            child_names=("left",),
            children={"left": np.array([1, 0])},
            arrays={},
            groups=(),
        )
        with pytest.raises(ValueError, match="root has a parent"):
            raw.validate()

    def test_mismatched_payload_rejected(self):
        raw = RawTree(
            child_names=("left",),
            children={"left": np.array([-1, -1])},
            arrays={"v": np.zeros(3)},
            groups=(),
        )
        with pytest.raises(ValueError, match="wrong length"):
            raw.validate()

    def test_zero_itemsize_group_rejected(self):
        with pytest.raises(ValueError, match="itemsize"):
            FieldGroup("bad", 0)
