"""Experiment harness tests (configs, runner, tables, figures, report).

Uses the tiny scale and a restricted benchmark set so the suite stays
fast; the full matrix is exercised by the benchmarks/ directory.
"""

import numpy as np
import pytest

from repro.harness.config import (
    BENCHMARKS,
    CPU_THREAD_SWEEP,
    SCALES,
    TINY,
    scale_from_env,
)
from repro.harness.figures import figure_series, format_figures
from repro.harness.report import generate_report
from repro.harness.runner import ExperimentRunner
from repro.harness.table1 import format_table1, table1_rows
from repro.harness.table2 import format_table2, table2_rows


@pytest.fixture(scope="module")
def runner():
    return ExperimentRunner(scale=TINY)


@pytest.fixture(scope="module")
def pc_result(runner):
    return runner.run("pc", "random", sorted_points=True)


class TestConfig:
    def test_benchmark_matrix_is_papers(self):
        assert set(BENCHMARKS) == {"bh", "pc", "knn", "nn", "vp"}
        assert BENCHMARKS["bh"] == ("plummer", "random")
        total_pairs = sum(len(v) for v in BENCHMARKS.values())
        assert total_pairs == 18  # Section 6.1.2: 18 benchmark/input pairs

    def test_thread_sweep_matches_figures(self):
        assert CPU_THREAD_SWEEP == (1, 2, 4, 8, 12, 16, 20, 24, 32)

    def test_scale_from_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "tiny")
        assert scale_from_env().name == "tiny"
        monkeypatch.setenv("REPRO_SCALE", "bogus")
        with pytest.raises(KeyError):
            scale_from_env()
        monkeypatch.delenv("REPRO_SCALE")
        assert scale_from_env().name == "small"

    def test_pc_radius_by_input(self):
        assert SCALES["small"].pc_radius("geocity") != SCALES["small"].pc_radius("random")


class TestRunner:
    def test_result_structure(self, pc_result):
        assert pc_result.lockstep is not None
        assert pc_result.nonlockstep.time_ms > 0
        assert pc_result.recursive_lockstep.time_ms > 0
        assert set(pc_result.cpu_ms) == set(CPU_THREAD_SWEEP)
        assert pc_result.work_expansion_mean >= 1.0

    def test_caching(self, runner, pc_result):
        again = runner.run("pc", "random", sorted_points=True)
        assert again is pc_result

    def test_speedup_and_improvement_accessors(self, pc_result):
        v1 = pc_result.speedup_vs_cpu(True, 1)
        v32 = pc_result.speedup_vs_cpu(True, 32)
        assert v1 > v32 > 0
        assert np.isfinite(pc_result.improvement_vs_recursive(True))
        assert np.isfinite(pc_result.improvement_vs_recursive(False))

    def test_best_time(self, pc_result):
        assert pc_result.best_time_ms <= pc_result.nonlockstep.time_ms

    def test_unknown_bench_rejected(self, runner):
        with pytest.raises(KeyError):
            runner.run("nope", "random", True)
        with pytest.raises(KeyError):
            runner.run("bh", "covtype", True)


class TestTable1:
    def test_rows_for_subset(self, runner):
        rows = table1_rows(runner, benches=["pc"])
        assert len(rows) == 2 * len(BENCHMARKS["pc"])  # L and N per input
        types = {r.traversal_type for r in rows}
        assert types == {"L", "N"}
        for r in rows:
            assert r.s_time_ms > 0 and r.u_time_ms > 0
            assert np.isfinite(r.s_speedup_vs1)

    def test_format_contains_columns(self, runner):
        text = format_table1(table1_rows(runner, benches=["pc"]))
        assert "Point Correlation" in text
        assert "Sorted" in text and "Unsorted" in text
        assert "%" in text


class TestTable2:
    def test_rows(self, runner):
        rows = table2_rows(runner, benches=["pc"])
        assert len(rows) == len(BENCHMARKS["pc"])
        for r in rows:
            assert r.sorted_mean >= 1.0
            assert r.unsorted_mean >= 1.0
            assert r.sorted_std >= 0.0

    def test_format(self, runner):
        text = format_table2(table2_rows(runner, benches=["pc"]))
        assert "Sorted" in text and "Unsorted" in text


class TestFigures:
    def test_series_shape(self, runner):
        series = figure_series(runner, sorted_points=True, benches=["pc"])
        assert len(series) == 2 * len(BENCHMARKS["pc"])
        for s in series:
            assert len(s.cpu_over_gpu) == len(CPU_THREAD_SWEEP)
            # CPU relative performance grows (weakly) with threads
            assert s.cpu_over_gpu[-1] >= s.cpu_over_gpu[0]

    def test_crossover_detection(self, runner):
        series = figure_series(runner, sorted_points=True, benches=["pc"])
        for s in series:
            x = s.crossover_threads
            if x is not None:
                assert any(
                    v >= 1.0 and t == x
                    for t, v in zip(s.threads, s.cpu_over_gpu)
                )

    def test_format(self, runner):
        series = figure_series(runner, sorted_points=False, benches=["pc"])
        text = format_figures(series, "Figure 11")
        assert "Figure 11" in text and "Lockstep" in text


class TestReport:
    def test_report_generates(self):
        r = ExperimentRunner(scale=TINY)
        # restrict via monkeypatched matrix for speed
        import repro.harness.config as cfg
        import repro.harness.table1 as t1
        report = generate_report_restricted(r)
        assert "# EXPERIMENTS" in report
        assert "Table 1 (measured)" in report
        assert "Figure 10" in report


def generate_report_restricted(runner):
    """Full report over the two cheapest benchmarks only."""
    import repro.harness.report as report_mod
    from unittest import mock

    restricted = {"pc": ("random",), "knn": ("random",)}
    with mock.patch.dict(
        "repro.harness.config.BENCHMARKS", restricted, clear=True
    ), mock.patch("repro.harness.table1.BENCHMARKS", restricted), mock.patch(
        "repro.harness.table2.BENCHMARKS", restricted
    ), mock.patch(
        "repro.harness.figures.BENCHMARKS", restricted
    ):
        return report_mod.generate_report(runner)
