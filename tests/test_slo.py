"""SLO burn-rate tracking: math, windows, latching, service wiring.

The unit half exercises :mod:`repro.telemetry.slo` directly on a
hand-built event schedule; the integration half drives a real
:class:`TraversalService` into a latency burn and asserts the full
alert path: burn gauges move, ``slo_alert_active`` flips, ``health()``
degrades, and the flight recorder freezes exactly one snapshot per
incident.
"""

import numpy as np
import pytest

from repro.service.service import ServiceConfig, TraversalService
from repro.telemetry import SLOConfig, SLOTracker, TelemetryConfig


class TestSLOConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            SLOConfig(latency_ms=0.0)
        with pytest.raises(ValueError):
            SLOConfig(latency_target=1.0)
        with pytest.raises(ValueError):
            SLOConfig(error_rate=0.0)
        with pytest.raises(ValueError):
            SLOConfig(fast_window_ms=0.0)
        with pytest.raises(ValueError):
            SLOConfig(fast_window_ms=100.0, slow_window_ms=50.0)
        with pytest.raises(ValueError):
            SLOConfig(min_events=0)
        with pytest.raises(ValueError):
            SLOConfig(fast_burn_threshold=0.0)

    def test_enabled_objectives(self):
        assert SLOConfig().enabled_objectives == ()
        assert SLOConfig(latency_ms=5.0).enabled_objectives == ("latency",)
        both = SLOConfig(latency_ms=5.0, error_rate=0.01)
        assert both.enabled_objectives == ("latency", "errors")

    def test_budget(self):
        cfg = SLOConfig(latency_ms=5.0, latency_target=0.9, error_rate=0.02)
        assert cfg.budget("latency") == pytest.approx(0.1)
        assert cfg.budget("errors") == pytest.approx(0.02)
        with pytest.raises(ValueError):
            cfg.budget("throughput")
        with pytest.raises(ValueError):
            SLOConfig(latency_ms=5.0).budget("errors")


def _tracker(**kw) -> SLOTracker:
    base = dict(
        latency_ms=1.0,
        latency_target=0.9,  # budget 0.1
        error_rate=0.1,
        fast_window_ms=10.0,
        slow_window_ms=100.0,
        fast_burn_threshold=5.0,
        slow_burn_threshold=2.0,
        min_events=4,
    )
    base.update(kw)
    return SLOTracker(SLOConfig(**base))


class TestBurnMath:
    def test_burn_is_bad_fraction_over_budget(self):
        tr = _tracker()
        # 4 events in the fast window, half over the latency bound:
        # bad fraction 0.5 / budget 0.1 = burn 5.0.
        for i, lat in enumerate((0.5, 2.0, 0.5, 2.0)):
            tr.record(float(i), lat, True)
        latency = tr.evaluate(4.0)[0]
        assert latency.objective == "latency"
        assert latency.fast_events == 4
        assert latency.fast_bad == 2
        assert latency.burn_fast == pytest.approx(5.0)
        assert latency.burn_slow == pytest.approx(5.0)
        assert latency.fast_alert  # 5.0 >= 5.0 and slow 5.0 >= 2.0

    def test_failure_counts_against_both_objectives(self):
        tr = _tracker()
        tr.record(0.0, None, False)
        latency, errors = tr.evaluate(1.0)
        assert latency.fast_bad == 1
        assert errors.fast_bad == 1

    def test_min_events_guards_alert(self):
        tr = _tracker(min_events=10)
        for i in range(5):
            tr.record(float(i), 99.0, True)  # every event bad
        latency = tr.evaluate(5.0)[0]
        assert latency.burn_fast > 5.0
        assert not latency.fast_alert  # only 5 of 10 required events

    def test_multi_window_guard(self):
        """A burst of bad events inside the fast window does not page
        when the slow window says the budget is fine overall."""
        tr = _tracker()
        # 90 good events spread over the slow window...
        for i in range(90):
            tr.record(float(i), 0.1, True)
        # ...then a burst of 10 bad ones just now: the fast window
        # reads 10 bad / 20 events (burn 5.0), the slow window reads
        # 10 bad / 100 events (burn 1.0).
        for _ in range(10):
            tr.record(89.5, 50.0, True)
        latency = tr.evaluate(90.0)[0]
        assert latency.burn_fast >= 5.0
        assert latency.burn_slow < 2.0
        assert not latency.fast_alert

    def test_window_trimming(self):
        tr = _tracker()
        tr.record(0.0, 99.0, True)
        tr.record(500.0, 0.1, True)
        latency = tr.evaluate(500.0)[0]
        assert latency.slow_events == 1  # the t=0 event left the window
        assert latency.slow_bad == 0
        assert tr.events_recorded == 2

    def test_empty_windows_zero_burn(self):
        tr = _tracker()
        latency, errors = tr.evaluate(1000.0)
        assert latency.burn_fast == 0.0
        assert errors.burn_slow == 0.0
        assert not latency.fast_alert


class TestLatch:
    def test_fires_once_per_incident(self):
        tr = _tracker()
        for i in range(4):
            tr.record(float(i), 99.0, True)
        first = tr.newly_fired(tr.evaluate(4.0))
        assert [st.objective for st in first] == ["latency"]
        # Still burning: latched, no re-fire.
        again = tr.newly_fired(tr.evaluate(5.0))
        assert again == []
        assert tr.any_fast_alert()
        assert tr.fast_alerts_fired == 1
        # Burn clears (windows empty), latch re-arms...
        assert tr.newly_fired(tr.evaluate(1000.0)) == []
        assert not tr.any_fast_alert()
        # ...and a new incident fires again.
        for i in range(4):
            tr.record(1000.0 + i, 99.0, True)
        refire = tr.newly_fired(tr.evaluate(1004.0))
        assert [st.objective for st in refire] == ["latency"]
        assert tr.fast_alerts_fired == 2

    def test_snapshot_json_safe(self):
        import json

        tr = _tracker()
        tr.record(0.0, 99.0, False)
        snap = tr.snapshot(1.0)
        text = json.dumps(snap, allow_nan=False)
        assert '"objectives"' in text
        assert snap["events_windowed"] == 1


def _service(slo: SLOConfig, **cfg_kw) -> TraversalService:
    cfg = ServiceConfig(
        telemetry=TelemetryConfig(enabled=True),
        slo=slo,
        memo_capacity=0,
        max_batch=8,
        **cfg_kw,
    )
    svc = TraversalService(cfg)
    rng = np.random.default_rng(3)
    svc.register("pc", "pc", rng.random((256, 2)), radius=0.1)
    return svc


class TestServiceIntegration:
    def test_latency_spike_flips_gauge_and_freezes_flight(self):
        """The acceptance path: an induced latency burn must flip the
        burn-rate gauge, fire the alert exactly once, degrade health,
        and freeze a flight-recorder snapshot."""
        slo = SLOConfig(
            latency_ms=1e-6,  # everything "violates": a forced spike
            latency_target=0.99,
            min_events=5,
        )
        svc = _service(slo)
        rng = np.random.default_rng(4)
        for i in range(16):
            svc.query("pc", rng.random(2), now=float(i) * 0.5)

        tracker = svc._slo["pc"]
        latency = tracker.evaluate(svc.now_ms)[0]
        assert latency.fast_alert
        assert tracker.fast_alerts_fired == 1  # latched, not per batch

        text = svc.telemetry.registry.expose_text()
        assert (
            'slo_alert_active{session="pc",objective="latency",'
            'severity="fast"} 1' in text
        )
        assert (
            'slo_fast_burn_total{session="pc",objective="latency"} 1' in text
        )
        burn_lines = [
            ln for ln in text.splitlines()
            if ln.startswith("slo_burn_rate") and 'window="fast"' in ln
        ]
        assert burn_lines and float(burn_lines[0].rsplit(" ", 1)[1]) > 14.0

        dumps = [
            d for d in svc.telemetry.flight.dumps
            if d["reason"] == "slo:fast-burn:latency"
        ]
        assert len(dumps) == 1
        assert dumps[0]["detail"]["fast_alert"] is True

        health = svc.health()
        assert health["status"] == "degraded"
        assert not health["ok"]
        assert health["checks"]["slo"]["fast_burns"][0]["objective"] == (
            "latency"
        )

    def test_healthy_service_stays_green(self):
        slo = SLOConfig(latency_ms=1e9, error_rate=0.5, min_events=5)
        svc = _service(slo)
        rng = np.random.default_rng(5)
        for i in range(12):
            svc.query("pc", rng.random(2), now=float(i) * 0.5)
        health = svc.health()
        assert health["ok"]
        assert health["checks"]["slo"]["fast_burns"] == []
        snap = svc.stats().slo["pc"]
        assert snap["fast_alerts_fired"] == 0
        assert all(not o["fast_alert"] for o in snap["objectives"])

    def test_error_burn_from_deadline_misses(self):
        """Deadline-missed queries are failures: they burn the error
        budget, not just the latency one."""
        slo = SLOConfig(
            latency_ms=1e9,  # latency objective satisfied
            error_rate=0.01,
            min_events=5,
        )
        # A deadline no batch can meet: every query resolves with
        # DeadlineExceeded.
        svc = _service(slo, deadline_ms=1e-6)
        rng = np.random.default_rng(6)
        for i in range(12):
            svc.query("pc", rng.random(2), now=float(i) * 0.5)
        st = svc.stats()
        assert st.queries_failed > 0
        errors = [
            o for o in st.slo["pc"]["objectives"] if o["objective"] == "errors"
        ]
        assert errors and errors[0]["fast_alert"]
        dumps = [
            d for d in svc.telemetry.flight.dumps
            if d["reason"] == "slo:fast-burn:errors"
        ]
        assert len(dumps) == 1

    def test_no_slo_config_means_no_tracking(self):
        cfg = ServiceConfig(telemetry=TelemetryConfig(enabled=True))
        service = TraversalService(cfg)
        rng = np.random.default_rng(7)
        service.register("pc", "pc", rng.random((64, 2)), radius=0.1)
        service.query("pc", rng.random(2), now=1.0)
        assert service.stats().slo == {}
        assert service.health()["checks"]["slo"]["tracked_sessions"] == []

    def test_unregister_drops_tracker(self):
        svc = _service(SLOConfig(latency_ms=5.0))
        assert "pc" in svc._slo
        svc.unregister("pc")
        assert "pc" not in svc._slo
