"""Strict OpenMetrics exposition validator (satellite of ISSUEs 9/10).

Replaces the curl-only smoke check: instead of grepping for one metric
name, this validates the whole scrape line by line — metric and label
name grammar, escape-aware label values, ``# HELP`` / ``# TYPE``
ordering and uniqueness, family contiguity, duplicate series, finite
sample values, OpenMetrics exemplar syntax (only on ``_bucket`` and
counter ``_total`` lines), histogram structure (cumulative
non-decreasing buckets, ``+Inf`` present and equal to ``_count``,
``le`` ascending), and the OpenMetrics framing rules a real Prometheus
enforces when it negotiates the format: counter metadata names carry
no ``_total`` suffix (the *sample* does), and the exposition ends with
the mandatory ``# EOF`` terminator.

Used three ways:

* imported by the pytest suite (``validate(text)`` raises
  :class:`ExpositionError` with the offending line number);
* re-exported through ``tests.test_serve.assert_valid_prometheus`` so
  existing callers keep their entry point;
* run as a module in CI against a live scrape::

      curl -fsS http://host:port/metrics | python -m tests.prometheus_validator /dev/stdin
"""

from __future__ import annotations

import math
import re
import sys
from typing import Dict, List, Optional, Tuple

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_NAME_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")
#: one label pair: name="value" with \\, \" and \n escapes only.
_LABEL_PAIR_RE = re.compile(
    r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\\n]|\\[\\"n])*)"'
)
#: sample line split: name[{labels}] value [# {exemplar-labels} value]
_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r" (?P<value>\S+)"
    r"(?: # \{(?P<ex_labels>[^}]*)\} (?P<ex_value>\S+))?$"
)

_TYPES = ("counter", "gauge", "histogram", "summary", "untyped")


class ExpositionError(AssertionError):
    """One malformed exposition line (carries the 1-based line number)."""

    def __init__(self, lineno: int, line: str, message: str) -> None:
        super().__init__(f"line {lineno}: {message}: {line!r}")
        self.lineno = lineno
        self.line = line


def _family_candidates(name: str) -> List[str]:
    """Family names a sample may belong to, most specific first:
    histogram suffixes stripped, then the counter ``_total`` suffix,
    then the name itself (gauges/untyped)."""
    out = [name]
    stripped = re.sub(r"_(bucket|sum|count)$", "", name)
    if stripped != name:
        out.append(stripped)
    if name.endswith("_total"):
        out.append(name[: -len("_total")])
    return out


def _parse_labels(
    lineno: int, line: str, raw: Optional[str]
) -> Tuple[Tuple[str, str], ...]:
    if raw is None or raw == "":
        return ()
    pos = 0
    pairs: List[Tuple[str, str]] = []
    while pos < len(raw):
        m = _LABEL_PAIR_RE.match(raw, pos)
        if m is None:
            raise ExpositionError(
                lineno, line, f"malformed label pair at {raw[pos:]!r}"
            )
        pairs.append((m.group(1), m.group(2)))
        pos = m.end()
        if pos < len(raw):
            if raw[pos] != ",":
                raise ExpositionError(
                    lineno, line, "labels must be comma-separated"
                )
            pos += 1
    names = [n for n, _ in pairs]
    if len(names) != len(set(names)):
        raise ExpositionError(lineno, line, f"duplicate label name in {names}")
    return tuple(pairs)

def _parse_value(lineno: int, line: str, raw: str) -> float:
    if raw in ("+Inf", "-Inf", "Inf", "NaN"):
        raise ExpositionError(
            lineno, line,
            "non-finite sample value (the repo's exports are finite by "
            "construction)",
        )
    try:
        return float(raw)
    except ValueError:
        raise ExpositionError(lineno, line, f"bad sample value {raw!r}")


def validate(text: str) -> Dict[str, str]:
    """Validate one scrape; returns ``{family: type}`` on success."""
    help_seen: Dict[str, int] = {}
    type_seen: Dict[str, str] = {}
    family_done: Dict[str, bool] = {}
    current_family: Optional[str] = None
    series_seen: set = set()
    #: histogram family -> {labels-sans-le: [(le, count), ...]}
    buckets: Dict[str, Dict[tuple, List[Tuple[float, float]]]] = {}
    counts: Dict[str, Dict[tuple, float]] = {}
    sums: Dict[str, set] = {}

    eof_at: Optional[int] = None
    for lineno, line in enumerate(text.splitlines(), start=1):
        if eof_at is not None:
            raise ExpositionError(
                lineno, line, f"content after the # EOF terminator "
                f"(line {eof_at})"
            )
        if line == "":
            continue
        if line != line.rstrip():
            raise ExpositionError(lineno, line, "trailing whitespace")
        if line == "# EOF":
            eof_at = lineno
            continue
        if line.startswith("# HELP "):
            parts = line.split(" ", 3)
            if len(parts) < 4 or not _NAME_RE.match(parts[2]):
                raise ExpositionError(lineno, line, "malformed HELP")
            family = parts[2]
            if family in help_seen:
                raise ExpositionError(lineno, line, "duplicate HELP")
            if "\\" in parts[3]:
                for frag in re.findall(r"\\.", parts[3]):
                    if frag not in ("\\\\", "\\n"):
                        raise ExpositionError(
                            lineno, line, f"bad HELP escape {frag!r}"
                        )
            help_seen[family] = lineno
            if current_family is not None and current_family != family:
                family_done[current_family] = True
            if family_done.get(family):
                raise ExpositionError(
                    lineno, line, "family reopened (exposition must be "
                    "contiguous per family)"
                )
            current_family = family
            continue
        if line.startswith("# TYPE "):
            parts = line.split()
            if len(parts) != 4:
                raise ExpositionError(lineno, line, "malformed TYPE")
            family, mtype = parts[2], parts[3]
            if mtype not in _TYPES:
                raise ExpositionError(lineno, line, f"bad type {mtype!r}")
            if family in type_seen:
                raise ExpositionError(lineno, line, "duplicate TYPE")
            if family not in help_seen:
                raise ExpositionError(lineno, line, "TYPE before HELP")
            if current_family != family:
                raise ExpositionError(
                    lineno, line, "TYPE must directly follow its HELP block"
                )
            type_seen[family] = mtype
            continue
        if line.startswith("#"):
            raise ExpositionError(lineno, line, "bad comment (not HELP/TYPE)")

        m = _SAMPLE_RE.match(line)
        if m is None:
            raise ExpositionError(lineno, line, "malformed sample")
        name = m.group("name")
        family = next(
            (c for c in _family_candidates(name) if c in type_seen), None
        )
        if family is None:
            raise ExpositionError(lineno, line, "sample before HELP/TYPE")
        mtype = type_seen[family]
        # OpenMetrics sample-name discipline per family type.
        if mtype == "counter" and name != f"{family}_total":
            raise ExpositionError(
                lineno, line,
                f"counter sample must be {family}_total, got {name}",
            )
        if mtype in ("gauge", "untyped") and name != family:
            raise ExpositionError(
                lineno, line,
                f"{mtype} sample must be named {family}, got {name}",
            )
        owner = family
        if current_family is not None and current_family != owner:
            family_done[current_family] = True
            if family_done.get(owner):
                raise ExpositionError(lineno, line, "family reopened")
            current_family = owner
        labels = _parse_labels(lineno, line, m.group("labels"))
        if (name, labels) in series_seen:
            raise ExpositionError(lineno, line, "duplicate series")
        series_seen.add((name, labels))
        value = _parse_value(lineno, line, m.group("value"))

        suffix = name[len(family):] if name.startswith(family) else ""
        if mtype == "histogram" and suffix not in (
            "_bucket", "_sum", "_count"
        ):
            raise ExpositionError(
                lineno, line, "histogram sample must be _bucket/_sum/_count"
            )
        if m.group("ex_labels") is not None:
            # OpenMetrics exemplars: only bucket and counter lines.
            if not (
                (mtype == "histogram" and suffix == "_bucket")
                or mtype == "counter"
            ):
                raise ExpositionError(
                    lineno, line, "exemplar on a non-bucket line"
                )
            ex_pairs = _parse_labels(lineno, line, m.group("ex_labels"))
            if not any(n == "trace_id" for n, _ in ex_pairs):
                raise ExpositionError(
                    lineno, line, "exemplar missing trace_id label"
                )
            ex_value = _parse_value(lineno, line, m.group("ex_value"))
            if not math.isfinite(ex_value):
                raise ExpositionError(lineno, line, "non-finite exemplar")

        if mtype == "histogram":
            key = tuple(p for p in labels if p[0] != "le")
            if suffix == "_bucket":
                le = dict(labels).get("le")
                if le is None:
                    raise ExpositionError(
                        lineno, line, "bucket sample missing le label"
                    )
                bound = math.inf if le == "+Inf" else float(le)
                buckets.setdefault(family, {}).setdefault(key, []).append(
                    (bound, value)
                )
            elif suffix == "_count":
                counts.setdefault(family, {})[key] = value
            elif suffix == "_sum":
                sums.setdefault(family, set()).add(key)

    if eof_at is None:
        raise ExpositionError(
            len(text.splitlines()), "<end of exposition>",
            "missing mandatory # EOF terminator",
        )

    # Histogram structure: per series, le ascending, counts cumulative,
    # +Inf present and equal to _count, _sum/_count present.
    for family, per_series in buckets.items():
        for key, pairs in per_series.items():
            bounds = [b for b, _ in pairs]
            if bounds != sorted(bounds):
                raise ExpositionError(
                    0, family, f"series {key}: le not ascending: {bounds}"
                )
            values = [v for _, v in pairs]
            if values != sorted(values):
                raise ExpositionError(
                    0, family,
                    f"series {key}: bucket counts not cumulative: {values}",
                )
            if not bounds or bounds[-1] != math.inf:
                raise ExpositionError(
                    0, family, f"series {key}: no +Inf bucket"
                )
            total = counts.get(family, {}).get(key)
            if total is None:
                raise ExpositionError(
                    0, family, f"series {key}: missing _count"
                )
            if values[-1] != total:
                raise ExpositionError(
                    0, family,
                    f"series {key}: +Inf bucket {values[-1]} != _count "
                    f"{total}",
                )
            if key not in sums.get(family, set()):
                raise ExpositionError(
                    0, family, f"series {key}: missing _sum"
                )
    return type_seen


def main(argv: Optional[List[str]] = None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    if len(argv) != 1:
        print(
            "usage: python -m tests.prometheus_validator FILE "
            "(use /dev/stdin for a pipe)",
            file=sys.stderr,
        )
        return 2
    with open(argv[0], "r", encoding="utf-8") as fh:
        text = fh.read()
    try:
        families = validate(text)
    except ExpositionError as err:
        print(f"INVALID: {err}", file=sys.stderr)
        return 1
    print(
        f"valid Prometheus exposition: {len(families)} families, "
        f"{len(text.splitlines())} lines"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
