"""Shared fixtures: tiny devices, datasets, apps, compiled kernels.

Expensive app builds are module-scoped; tests must treat them as
immutable (always call ``app.make_ctx()`` for fresh result arrays).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.apps.barneshut import build_barneshut_app
from repro.apps.knn import build_knn_app
from repro.apps.nn import build_nn_app
from repro.apps.pointcorr import build_pointcorr_app
from repro.apps.vptree_nn import build_vptree_app
from repro.core.pipeline import TransformPipeline
from repro.gpusim.device import TESLA_C2070, small_test_device
from repro.points.datasets import plummer_bodies, random_points
from repro.points.sorting import morton_order, shuffled_order

N_SMALL = 220  # small enough for brute-force oracles, > several warps


@pytest.fixture(scope="session")
def device4():
    """A 4-lane-warp test device (readable warp fixtures)."""
    return small_test_device(warp_size=4)


@pytest.fixture(scope="session")
def device32():
    return TESLA_C2070


@pytest.fixture(scope="session")
def pipeline():
    return TransformPipeline()


@pytest.fixture(scope="session")
def points3d():
    return random_points(n=N_SMALL, dim=3, seed=101).points


@pytest.fixture(scope="session")
def points7d():
    return random_points(n=N_SMALL, dim=7, seed=102).points


@pytest.fixture(scope="session")
def sorted_order3(points3d):
    return morton_order(points3d)


@pytest.fixture(scope="session")
def shuffled_order3(points3d):
    return shuffled_order(len(points3d), seed=103)


@pytest.fixture(scope="session")
def pc_app(points3d, sorted_order3):
    return build_pointcorr_app(points3d, sorted_order3, radius=0.25, leaf_size=4)


@pytest.fixture(scope="session")
def knn_app(points3d, sorted_order3):
    return build_knn_app(points3d, sorted_order3, k=3, leaf_size=4)


@pytest.fixture(scope="session")
def nn_app(points3d, sorted_order3):
    return build_nn_app(points3d, sorted_order3)


@pytest.fixture(scope="session")
def vp_app(points3d, sorted_order3):
    return build_vptree_app(points3d, sorted_order3, leaf_size=4)


@pytest.fixture(scope="session")
def bh_app():
    bodies = plummer_bodies(n=180, seed=104)
    order = morton_order(bodies.pos)
    return build_barneshut_app(bodies, order, theta=0.5, leaf_size=2)


@pytest.fixture(scope="session")
def all_apps(pc_app, knn_app, nn_app, vp_app, bh_app):
    return {"pc": pc_app, "knn": knn_app, "nn": nn_app, "vp": vp_app, "bh": bh_app}


@pytest.fixture(scope="session")
def compiled_apps(all_apps, pipeline):
    return {name: pipeline.compile(app.spec) for name, app in all_apps.items()}


@pytest.fixture(scope="session")
def oracles(all_apps):
    return {name: app.brute_force() for name, app in all_apps.items()}
