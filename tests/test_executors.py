"""Executor tests: correctness of all four GPU variants on all five
benchmarks, visit-order preservation, union/mask properties, and stats
plausibility."""

import numpy as np
import pytest

from repro.cpusim.recursive import RecursiveInterpreter
from repro.gpusim.executors import (
    AutoropesExecutor,
    LockstepExecutor,
    RecursiveExecutor,
    TraversalLaunch,
)
from repro.gpusim.executors.recursive_exec import (
    RecursiveMaskedExecutor,
    RecursiveUnmaskedExecutor,
)
from repro.gpusim.stack import RopeStackLayout

APP_NAMES = ("pc", "knn", "nn", "vp", "bh")


def launch(app, kernel, device, **kw):
    return TraversalLaunch(
        kernel=kernel,
        tree=app.tree,
        ctx=app.make_ctx(),
        n_points=app.n_points,
        device=device,
        **kw,
    )


class TestCorrectness:
    @pytest.mark.parametrize("name", APP_NAMES)
    def test_autoropes_matches_oracle(self, name, all_apps, compiled_apps,
                                      oracles, device4):
        app = all_apps[name]
        L = launch(app, compiled_apps[name].autoropes, device4)
        AutoropesExecutor(L).run()
        app.check(L.ctx.out, oracles[name])

    @pytest.mark.parametrize("name", APP_NAMES)
    def test_lockstep_matches_oracle(self, name, all_apps, compiled_apps,
                                     oracles, device4):
        app = all_apps[name]
        L = launch(app, compiled_apps[name].lockstep, device4)
        LockstepExecutor(L).run()
        app.check(L.ctx.out, oracles[name])

    @pytest.mark.parametrize("name", APP_NAMES)
    def test_recursive_masked_matches_oracle(self, name, all_apps,
                                             compiled_apps, oracles, device4):
        app = all_apps[name]
        L = launch(app, compiled_apps[name].lockstep, device4)
        RecursiveExecutor(L, masking=True).run()
        app.check(L.ctx.out, oracles[name])

    @pytest.mark.parametrize("name", APP_NAMES)
    def test_recursive_unmasked_matches_oracle(self, name, all_apps,
                                               compiled_apps, oracles, device4):
        app = all_apps[name]
        L = launch(app, compiled_apps[name].autoropes, device4)
        RecursiveExecutor(L, masking=False).run()
        app.check(L.ctx.out, oracles[name])

    @pytest.mark.parametrize("name", APP_NAMES)
    def test_warp32_also_correct(self, name, all_apps, compiled_apps,
                                 oracles, device32):
        app = all_apps[name]
        L = launch(app, compiled_apps[name].lockstep, device32)
        LockstepExecutor(L).run()
        app.check(L.ctx.out, oracles[name])

    @pytest.mark.parametrize(
        "layout",
        [RopeStackLayout.INTERLEAVED_GLOBAL, RopeStackLayout.CONTIGUOUS_GLOBAL,
         RopeStackLayout.SHARED],
    )
    def test_results_independent_of_stack_layout(self, layout, pc_app,
                                                 compiled_apps, oracles, device4):
        L = launch(pc_app, compiled_apps["pc"].autoropes, device4,
                   stack_layout=layout)
        AutoropesExecutor(L).run()
        pc_app.check(L.ctx.out, oracles["pc"])


class TestVisitOrderPreservation:
    """Section 3.3: autoropes preserves the recursive visit order."""

    @pytest.mark.parametrize("name", APP_NAMES)
    def test_order_matches_scalar_recursion(self, name, all_apps,
                                            compiled_apps, device4):
        app = all_apps[name]
        L = launch(app, compiled_apps[name].autoropes, device4,
                   record_visits=True)
        res = AutoropesExecutor(L).run()
        seqs = res.per_point_sequences()
        interp = RecursiveInterpreter(app.spec, app.tree, app.make_ctx())
        for p in range(0, app.n_points, 37):
            np.testing.assert_array_equal(interp.run_point(p), seqs[p], err_msg=name)


class TestLockstepProperties:
    def test_useful_visits_equal_own_traversal(self, pc_app, compiled_apps,
                                               device4):
        """A lane's mask-set visits are exactly its own traversal's
        visit set (unguided: same order too)."""
        Ll = launch(pc_app, compiled_apps["pc"].lockstep, device4,
                    record_visits=True)
        lock = LockstepExecutor(Ll).run()
        lock_seqs = lock.per_point_sequences()
        La = launch(pc_app, compiled_apps["pc"].autoropes, device4,
                    record_visits=True)
        auto_seqs = AutoropesExecutor(La).run().per_point_sequences()
        for p in range(0, pc_app.n_points, 23):
            np.testing.assert_array_equal(lock_seqs[p], auto_seqs[p])

    def test_warp_visits_cover_union(self, pc_app, compiled_apps, device4):
        Ll = launch(pc_app, compiled_apps["pc"].lockstep, device4,
                    record_visits=True)
        res = LockstepExecutor(Ll).run()
        seqs = res.per_point_sequences()
        ws = device4.warp_size
        for w in range(0, Ll.n_warps, 7):
            members = range(w * ws, min((w + 1) * ws, pc_app.n_points))
            union = set()
            for p in members:
                union.update(seqs[p].tolist())
            assert res.nodes_per_warp[w] >= len(union)

    def test_work_expansion_at_least_one(self, all_apps, compiled_apps, device4):
        for name in APP_NAMES:
            L = launch(all_apps[name], compiled_apps[name].lockstep, device4)
            res = LockstepExecutor(L).run()
            assert (res.work_expansion_per_warp() >= 1.0 - 1e-9).all(), name

    def test_lockstep_visits_more_nodes_per_point(self, all_apps,
                                                  compiled_apps, device4):
        for name in ("pc", "bh"):
            app = all_apps[name]
            rl = LockstepExecutor(
                launch(app, compiled_apps[name].lockstep, device4)
            ).run()
            ra = AutoropesExecutor(
                launch(app, compiled_apps[name].autoropes, device4)
            ).run()
            assert rl.avg_nodes_per_point >= ra.avg_nodes_per_point, name

    def test_executor_kind_checks(self, pc_app, compiled_apps, device4):
        with pytest.raises(ValueError, match="non-lockstep"):
            AutoropesExecutor(launch(pc_app, compiled_apps["pc"].lockstep, device4))
        with pytest.raises(ValueError, match="lockstep kernel"):
            LockstepExecutor(launch(pc_app, compiled_apps["pc"].autoropes, device4))
        with pytest.raises(ValueError, match="autoropes kernel"):
            RecursiveExecutor(
                launch(pc_app, compiled_apps["pc"].lockstep, device4), masking=False
            )


class TestRecursiveBaseline:
    def test_factory_dispatch(self, pc_app, compiled_apps, device4):
        m = RecursiveExecutor(
            launch(pc_app, compiled_apps["pc"].lockstep, device4), masking=True
        )
        u = RecursiveExecutor(
            launch(pc_app, compiled_apps["pc"].autoropes, device4), masking=False
        )
        assert isinstance(m, RecursiveMaskedExecutor)
        assert isinstance(u, RecursiveUnmaskedExecutor)

    def test_recursion_pays_calls_and_frames(self, pc_app, compiled_apps, device4):
        L = launch(pc_app, compiled_apps["pc"].lockstep, device4)
        res = RecursiveExecutor(L, masking=True).run()
        assert res.stats.recursive_calls > 0
        assert res.stats.stack_ops == 0  # frames, not rope-stack traffic

    def test_masked_recursive_slower_than_lockstep(self, pc_app,
                                                   compiled_apps, device4):
        rec = RecursiveExecutor(
            launch(pc_app, compiled_apps["pc"].lockstep, device4), masking=True
        ).run()
        lock = LockstepExecutor(
            launch(pc_app, compiled_apps["pc"].lockstep, device4)
        ).run()
        assert rec.time_ms > lock.time_ms

    def test_unmasked_pays_divergence_penalty(self, pc_app, compiled_apps,
                                              device4):
        masked = RecursiveExecutor(
            launch(pc_app, compiled_apps["pc"].lockstep, device4), masking=True
        ).run()
        unmasked = RecursiveExecutor(
            launch(pc_app, compiled_apps["pc"].autoropes, device4), masking=False
        ).run()
        assert unmasked.timing.compute_cycles > masked.timing.compute_cycles


class TestStatsPlausibility:
    def test_stats_populated(self, pc_app, compiled_apps, oracles, device4):
        L = launch(pc_app, compiled_apps["pc"].autoropes, device4)
        res = AutoropesExecutor(L).run()
        s = res.stats
        assert s.warp_instructions > 0
        assert s.global_transactions > 0
        assert s.node_visits > 0
        assert s.steps > 0
        assert res.time_ms > 0

    def test_visit_counts_consistent(self, pc_app, compiled_apps, device4):
        L = launch(pc_app, compiled_apps["pc"].autoropes, device4)
        res = AutoropesExecutor(L).run()
        assert res.stats.node_visits == res.nodes_per_point.sum()

    def test_per_point_sequences_requires_recording(self, pc_app,
                                                    compiled_apps, device4):
        L = launch(pc_app, compiled_apps["pc"].autoropes, device4)
        res = AutoropesExecutor(L).run()
        with pytest.raises(ValueError, match="record"):
            res.per_point_sequences()

    def test_lockstep_coalesces_better(self, pc_app, compiled_apps, device32):
        """The whole point of Section 4: lockstep needs fewer
        transactions per useful visit."""
        la = launch(pc_app, compiled_apps["pc"].autoropes, device32)
        ra = AutoropesExecutor(la).run()
        ll = launch(pc_app, compiled_apps["pc"].lockstep, device32)
        rl = LockstepExecutor(ll).run()
        per_visit_a = ra.stats.global_transactions / max(ra.stats.node_visits, 1)
        per_visit_l = rl.stats.global_transactions / max(rl.stats.node_visits, 1)
        assert per_visit_l < per_visit_a

    def test_shared_stack_occupancy_effect(self, pc_app, compiled_apps, device4):
        shared = LockstepExecutor(
            launch(pc_app, compiled_apps["pc"].lockstep, device4,
                   stack_layout=RopeStackLayout.SHARED)
        ).run()
        glob = LockstepExecutor(
            launch(pc_app, compiled_apps["pc"].lockstep, device4,
                   stack_layout=RopeStackLayout.INTERLEAVED_GLOBAL)
        ).run()
        assert shared.occupancy <= glob.occupancy
        assert shared.stats.shared_accesses > 0
        assert glob.stats.shared_accesses == 0


class TestPadding:
    def test_nonwarp_multiple_points(self, points3d, device4, pipeline):
        """n_points not a multiple of warp size: padding lanes idle."""
        from repro.apps.pointcorr import build_pointcorr_app

        n = 37
        app = build_pointcorr_app(
            points3d[:n], np.arange(n), radius=0.3, leaf_size=2
        )
        compiled = pipeline.compile(app.spec)
        want = app.brute_force()
        for kernel, exe in (
            (compiled.autoropes, AutoropesExecutor),
            (compiled.lockstep, LockstepExecutor),
        ):
            L = launch(app, kernel, device4)
            exe(L).run()
            app.check(L.ctx.out, want)

    def test_single_point(self, points3d, device4, pipeline):
        from repro.apps.pointcorr import build_pointcorr_app

        app = build_pointcorr_app(
            points3d[:8], np.array([0]), radius=0.4, leaf_size=2
        )
        compiled = pipeline.compile(app.spec)
        L = launch(app, compiled.lockstep, device4)
        LockstepExecutor(L).run()
        app.check(L.ctx.out, app.brute_force())
