"""Differential tests for the Python code-generation backend: emitted
source vs scalar recursion vs the vectorized executors."""

import numpy as np
import pytest

from repro.core.emit_python import compile_traversal, emit_traversal_source
from repro.cpusim.recursive import RecursiveInterpreter


class TestEmission:
    def test_source_is_readable_python(self, compiled_apps):
        src = emit_traversal_source(compiled_apps["pc"].autoropes)
        assert "def traverse(ctx, tree, pt, root):" in src
        assert "stk.pop()" in src
        assert "continue" in src
        compile(src, "<check>", "exec")  # syntactically valid

    def test_reversed_push_order_in_source(self, compiled_apps):
        src = emit_traversal_source(compiled_apps["pc"].autoropes)
        # Fig. 6: right pushed before left.
        assert src.index("'right', node") < src.index("'left', node")

    def test_callable_carries_source(self, compiled_apps):
        fn = compile_traversal(compiled_apps["pc"].autoropes)
        assert "def traverse" in fn.__source__


class TestDifferential:
    @pytest.mark.parametrize("name", ["pc", "knn", "nn", "vp", "bh"])
    def test_emitted_matches_recursion(self, name, all_apps, compiled_apps):
        app = all_apps[name]
        kernel = compiled_apps[name].autoropes
        fn = compile_traversal(kernel)

        gen_ctx = app.make_ctx()
        ref_ctx = app.make_ctx()
        interp = RecursiveInterpreter(app.spec, app.tree, ref_ctx)
        for p in range(0, app.n_points, 41):
            got = fn(gen_ctx, app.tree, p, app.tree.root)
            want = interp.run_point(p)
            np.testing.assert_array_equal(np.array(got), want, err_msg=name)
        # Results of the sampled points agree too.
        for key in gen_ctx.out:
            if isinstance(gen_ctx.out[key], np.ndarray):
                idx = np.arange(0, app.n_points, 41)
                np.testing.assert_allclose(
                    gen_ctx.out[key][idx], ref_ctx.out[key][idx], rtol=1e-9
                )

    def test_emitted_handles_normalized_inorder(self):
        """The pushed-down (phantom-visiting) form emits correctly."""
        from repro.apps.base import QuerySet
        from repro.core.ir import (
            ChildRef,
            EvalContext,
            Recurse,
            Seq,
            TraversalSpec,
            Update,
            UpdateRef,
        )
        from repro.core.pipeline import TransformPipeline
        from repro.trees.node import FieldGroup, RawTree
        from repro.trees.linearize import linearize_left_biased

        n = 15
        left = np.array([2 * i + 1 if 2 * i + 1 < n else -1 for i in range(n)])
        right = np.array([2 * i + 2 if 2 * i + 2 < n else -1 for i in range(n)])
        tree = linearize_left_biased(
            RawTree(
                child_names=("left", "right"),
                children={"left": left, "right": right},
                arrays={},
                groups=(FieldGroup("hot", 8),),
            )
        )
        log = []

        def rec(ctx, node, pt, args):
            log.append(int(node[0]))

        spec = TraversalSpec(
            name="inorder",
            body=Seq(
                Recurse(ChildRef("left")),
                Update(UpdateRef("u")),
                Recurse(ChildRef("right")),
            ),
            updates={"u": rec},
        )
        compiled = TransformPipeline().compile(spec)
        fn = compile_traversal(compiled.autoropes)
        ctx = EvalContext(
            tree=tree,
            points=QuerySet(coords=np.zeros((1, 1)), orig_ids=np.arange(1)),
            out={},
        )
        fn(ctx, tree, 0, tree.root)
        emitted_order = list(log)
        log.clear()
        RecursiveInterpreter(spec, tree, ctx).run_point(0)
        assert emitted_order == log
        # it really is the in-order sequence over the preorder layout
        assert sorted(emitted_order) == list(range(n))
