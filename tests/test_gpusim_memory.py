"""Memory model tests: allocator, coalescing, and the L2 approximation."""

import numpy as np
import pytest

from repro.gpusim.device import small_test_device
from repro.gpusim.memory import DeviceAllocator, GlobalMemory
from repro.gpusim.stats import KernelStats


@pytest.fixture
def device():
    return small_test_device(warp_size=4)


def make_memory(device, l2=True, regions=((("a", 8, 1000),))):
    alloc = DeviceAllocator(device)
    regs = {}
    for name, itemsize, count in regions:
        regs[name] = alloc.alloc(name, itemsize, count)
    stats = KernelStats()
    mem = GlobalMemory(device, alloc, stats, l2_enabled=l2)
    return alloc, regs, stats, mem


class TestAllocator:
    def test_regions_are_segment_aligned_and_disjoint(self, device):
        alloc = DeviceAllocator(device)
        a = alloc.alloc("a", 8, 10)
        b = alloc.alloc("b", 8, 10)
        seg = device.segment_bytes
        assert a.base % seg == 0 and b.base % seg == 0
        assert b.base >= a.base + a.nbytes

    def test_duplicate_name_rejected(self, device):
        alloc = DeviceAllocator(device)
        alloc.alloc("a", 8, 10)
        with pytest.raises(ValueError, match="already allocated"):
            alloc.alloc("a", 8, 10)

    def test_bad_sizes_rejected(self, device):
        alloc = DeviceAllocator(device)
        with pytest.raises(ValueError):
            alloc.alloc("z", 0, 10)

    def test_addresses(self, device):
        alloc = DeviceAllocator(device)
        r = alloc.alloc("a", 16, 10)
        np.testing.assert_array_equal(
            r.addresses(np.array([0, 1, 2])), r.base + np.array([0, 16, 32])
        )

    def test_region_lookup(self, device):
        alloc = DeviceAllocator(device)
        r = alloc.alloc("a", 8, 10)
        assert alloc.region("a") is r


class TestCoalescing:
    def test_same_segment_is_one_transaction(self, device):
        _, regs, stats, mem = make_memory(device, l2=False)
        addrs = regs["a"].addresses(np.array([[0, 1, 2, 3]]))
        n = mem.warp_access(addrs, 8, None, step=1)
        assert n == 1
        assert stats.global_transactions == 1

    def test_scattered_lanes_cost_one_each(self, device):
        _, regs, stats, mem = make_memory(device, l2=False)
        # 8-byte items, 128-byte segments: stride 16 items apart.
        idx = np.array([[0, 16, 32, 48]])
        n = mem.warp_access(regs["a"].addresses(idx), 8, None, step=1)
        assert n == 4

    def test_inactive_lanes_do_not_count(self, device):
        _, regs, stats, mem = make_memory(device, l2=False)
        idx = np.array([[0, 16, 32, 48]])
        active = np.array([[True, False, False, True]])
        n = mem.warp_access(regs["a"].addresses(idx), 8, active, step=1)
        assert n == 2

    def test_all_inactive_is_free(self, device):
        _, regs, stats, mem = make_memory(device, l2=False)
        idx = np.array([[0, 1, 2, 3]])
        n = mem.warp_access(regs["a"].addresses(idx), 8, np.zeros((1, 4), bool), 1)
        assert n == 0
        assert stats.global_transactions == 0

    def test_access_straddling_two_segments(self, device):
        _, regs, stats, mem = make_memory(device, l2=False)
        # one 8-byte item starting 4 bytes before a segment boundary
        addr = np.array([[regs["a"].base + 124]])
        n = mem.warp_access(addr, 8, None, step=1)
        assert n == 2

    def test_multiple_warps_accounted_independently(self, device):
        _, regs, stats, mem = make_memory(device, l2=False)
        idx = np.array([[0, 1, 2, 3], [0, 1, 2, 3]])
        n = mem.warp_access(regs["a"].addresses(idx), 8, None, step=1)
        assert n == 2  # one transaction per warp

    def test_warp_uniform_lockstep_load(self, device):
        _, regs, stats, mem = make_memory(device, l2=False)
        idx = np.array([[5], [7], [5]])
        n = mem.warp_access(regs["a"].addresses(idx), 8, None, step=1)
        assert n == 3

    def test_rejects_bad_shapes(self, device):
        _, regs, stats, mem = make_memory(device)
        with pytest.raises(ValueError, match="n_warps"):
            mem.warp_access(np.array([1, 2, 3]), 8, None, 1)
        with pytest.raises(ValueError, match="nbytes"):
            mem.warp_access(np.array([[1]]), 0, None, 1)


class TestL2:
    def test_immediate_reuse_hits(self, device):
        _, regs, stats, mem = make_memory(device, l2=True)
        addrs = regs["a"].addresses(np.array([[0, 1, 2, 3]]))
        mem.warp_access(addrs, 8, None, step=1)
        mem.warp_access(addrs, 8, None, step=2)
        assert stats.l2_hit_transactions >= 1
        assert stats.global_transactions == 2

    def test_distant_reuse_misses(self, device):
        _, regs, stats, mem = make_memory(
            device, l2=True, regions=(("a", 128, 100000),)
        )
        first = regs["a"].addresses(np.array([[0, 1, 2, 3]]))
        mem.warp_access(first, 128, None, step=1)
        # Touch a large, distinct working set to age the first line out.
        for step in range(2, 60):
            idx = np.arange(4)[None, :] + step * 500
            mem.warp_access(regs["a"].addresses(idx), 128, None, step=step)
        before = stats.l2_hit_transactions
        mem.warp_access(first, 128, None, step=100)
        hits_on_return = stats.l2_hit_transactions - before
        assert hits_on_return == 0

    def test_duplicate_segments_within_call_hit(self, device):
        _, regs, stats, mem = make_memory(device, l2=True)
        # two warps touch the same segment in the same call: second is
        # still a transaction but serviced from L2.
        idx = np.array([[0], [0]])
        n = mem.warp_access(regs["a"].addresses(idx), 8, None, step=1)
        assert n == 2
        assert stats.l2_hit_transactions >= 1

    def test_dram_bytes_tracks_misses(self, device):
        _, regs, stats, mem = make_memory(device, l2=False)
        mem.warp_access(regs["a"].addresses(np.array([[0]])), 8, None, 1)
        assert stats.dram_bytes == device.segment_bytes
