"""Cost model and launch geometry tests."""

import numpy as np
import pytest

from repro.gpusim.cost import CostModel
from repro.gpusim.device import TESLA_C2070, small_test_device
from repro.gpusim.kernel import LaunchConfig, occupancy_for
from repro.gpusim.stats import KernelStats


def stats_with(**kw):
    s = KernelStats()
    for k, v in kw.items():
        setattr(s, k, v)
    return s


class TestLaunchConfig:
    def test_threads_padded_to_warp(self):
        lc = LaunchConfig(n_points=100, device=TESLA_C2070)
        assert lc.n_threads == 128
        assert lc.n_warps == 4

    def test_exact_multiple(self):
        lc = LaunchConfig(n_points=256, device=TESLA_C2070)
        assert lc.n_threads == 256

    def test_waves(self):
        resident = TESLA_C2070.max_resident_threads
        lc = LaunchConfig(n_points=resident + 1, device=TESLA_C2070)
        assert lc.waves == 2

    def test_warp_lane_mapping(self):
        lc = LaunchConfig(n_points=64, device=TESLA_C2070)
        assert lc.lane_of_thread(np.array([0, 33])).tolist() == [0, 1]
        assert lc.warp_of_thread(np.array([0, 33])).tolist() == [0, 1]

    def test_invalid_configs(self):
        with pytest.raises(ValueError):
            LaunchConfig(n_points=0, device=TESLA_C2070)
        with pytest.raises(ValueError):
            LaunchConfig(n_points=8, device=TESLA_C2070, block_size=100)
        with pytest.raises(ValueError):
            LaunchConfig(n_points=8, device=TESLA_C2070, block_size=2048)


class TestOccupancy:
    def test_no_shared_full_occupancy(self):
        assert occupancy_for(TESLA_C2070, 0) == 1.0

    def test_shared_limits_occupancy(self):
        dev = TESLA_C2070
        per_warp = dev.shared_mem_per_sm // (dev.max_warps_per_sm // 2)
        assert occupancy_for(dev, per_warp) == pytest.approx(0.5, abs=0.05)

    def test_huge_shared_floors_at_one_warp(self):
        dev = TESLA_C2070
        occ = occupancy_for(dev, dev.shared_mem_per_sm * 2)
        assert occ == pytest.approx(1 / dev.max_warps_per_sm)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            occupancy_for(TESLA_C2070, -1)

    def test_boundaries(self):
        dev = TESLA_C2070
        # Exactly one warp's worth of shared memory per resident warp:
        # full occupancy, right at the boundary.
        per_warp = dev.shared_mem_per_sm // dev.max_warps_per_sm
        assert occupancy_for(dev, per_warp) == 1.0
        # One byte over the even split loses a resident warp.
        assert occupancy_for(dev, per_warp + 1) == pytest.approx(
            (dev.max_warps_per_sm - 1) / dev.max_warps_per_sm
        )
        # The result is always inside (0, 1]: even absurd consumption
        # floors at one resident warp, never zero.
        for bytes_per_warp in (0, 1, per_warp, dev.shared_mem_per_sm * 10):
            occ = occupancy_for(dev, bytes_per_warp)
            assert 0.0 < occ <= 1.0


class TestCostModel:
    def setup_method(self):
        self.dev = small_test_device(warp_size=4)
        self.cm = CostModel(self.dev)

    def test_compute_cycles_scale_with_instructions(self):
        a = self.cm.compute_cycles(stats_with(warp_instructions=1000.0))
        b = self.cm.compute_cycles(stats_with(warp_instructions=2000.0))
        assert b == pytest.approx(2 * a)

    def test_recursion_tax(self):
        base = self.cm.compute_cycles(stats_with(warp_instructions=100.0))
        taxed = self.cm.compute_cycles(
            stats_with(warp_instructions=100.0, recursive_calls=10)
        )
        assert taxed == pytest.approx(
            base + 10 * self.dev.call_overhead_cycles / self.dev.num_sms
        )

    def test_l2_hits_cheaper_than_misses(self):
        misses = self.cm.memory_cycles(stats_with(global_transactions=100))
        hits = self.cm.memory_cycles(
            stats_with(global_transactions=100, l2_hit_transactions=100)
        )
        assert hits < misses

    def test_roofline_max_at_full_overlap(self):
        s = stats_with(warp_instructions=1400.0, global_transactions=10)
        t = self.cm.timing(s, occupancy=1.0)
        assert t.total_cycles == pytest.approx(
            max(t.compute_cycles, t.memory_cycles)
            + self.dev.launch_overhead_cycles
        )

    def test_low_occupancy_serializes(self):
        s = stats_with(warp_instructions=1400.0, global_transactions=1000)
        full = self.cm.timing(s, occupancy=1.0)
        low = self.cm.timing(s, occupancy=0.05)
        assert low.total_cycles > full.total_cycles

    def test_bound_label(self):
        compute = self.cm.timing(stats_with(warp_instructions=1e6))
        memory = self.cm.timing(stats_with(global_transactions=10**6))
        assert compute.bound == "compute"
        assert memory.bound == "memory"

    def test_invalid_occupancy(self):
        with pytest.raises(ValueError):
            self.cm.timing(KernelStats(), occupancy=0.0)
        with pytest.raises(ValueError):
            self.cm.timing(KernelStats(), occupancy=1.5)

    def test_invalid_imbalance(self):
        with pytest.raises(ValueError, match="imbalance"):
            self.cm.timing(KernelStats(), imbalance=0.5)


class TestLaunchTimeBoundaries:
    """Boundary behavior of occupancy in timing()/launch_time():
    exactly 1.0 and barely-above-zero are valid, 0.0 and below are
    configuration errors, never silent division blow-ups."""

    def setup_method(self):
        self.cm = CostModel(small_test_device(warp_size=4))
        self.stats = stats_with(
            warp_instructions=1e5, global_transactions=1e3
        )

    def test_launch_time_is_timing_scalar(self):
        t = self.cm.timing(self.stats, occupancy=0.5, imbalance=1.5)
        assert self.cm.launch_time(
            self.stats, occupancy=0.5, imbalance=1.5
        ) == t.time_ms

    def test_occupancy_exactly_one(self):
        assert self.cm.launch_time(self.stats, occupancy=1.0) > 0.0

    def test_occupancy_just_above_zero(self):
        eps = 1e-6
        t = self.cm.launch_time(self.stats, occupancy=eps)
        assert np.isfinite(t)
        # Near-zero occupancy fully serializes compute and memory
        # (roofline sum instead of max): strictly slower than full
        # occupancy, never inf/nan.
        assert t > self.cm.launch_time(self.stats, occupancy=1.0)

    @pytest.mark.parametrize("bad", (0.0, -0.1, -1.0, 1.0000001, 2.0))
    def test_invalid_occupancy_raises(self, bad):
        with pytest.raises(ValueError, match="occupancy"):
            self.cm.launch_time(self.stats, occupancy=bad)

    def test_imbalance_exactly_one_valid(self):
        assert self.cm.launch_time(self.stats, imbalance=1.0) > 0.0

    @pytest.mark.parametrize("bad", (0.999, 0.0, -1.0))
    def test_invalid_imbalance_raises(self, bad):
        with pytest.raises(ValueError, match="imbalance"):
            self.cm.launch_time(self.stats, imbalance=bad)

    def test_monotone_in_occupancy(self):
        times = [
            self.cm.launch_time(self.stats, occupancy=o)
            for o in (0.125, 0.25, 0.5, 1.0)
        ]
        assert times == sorted(times, reverse=True)


class TestImbalance:
    def setup_method(self):
        self.cm = CostModel(small_test_device(warp_size=4, num_sms=2))

    def test_uniform_work_is_balanced(self):
        assert self.cm.imbalance_factor(np.full(64, 10)) == pytest.approx(1.0)

    def test_skewed_work_raises_factor(self):
        work = np.zeros(64)
        work[0] = 1000.0
        assert self.cm.imbalance_factor(work) == pytest.approx(2.0)

    def test_empty_is_one(self):
        assert self.cm.imbalance_factor(np.array([])) == 1.0
        assert self.cm.imbalance_factor(np.zeros(8)) == 1.0

    def test_imbalance_scales_compute_time(self):
        s = stats_with(warp_instructions=1e5)
        t1 = self.cm.timing(s, imbalance=1.0)
        t2 = self.cm.timing(s, imbalance=2.0)
        assert t2.compute_cycles == pytest.approx(2 * t1.compute_cycles)


class TestStats:
    def test_merge_sums_and_maxes(self):
        a = stats_with(warp_instructions=10.0, global_transactions=5)
        a.steps = 7
        a.extra["x"] = 1.0
        b = stats_with(warp_instructions=3.0, global_transactions=2)
        b.steps = 9
        b.extra["x"] = 2.0
        a.merge(b)
        assert a.warp_instructions == 13.0
        assert a.global_transactions == 7
        assert a.steps == 9
        assert a.extra["x"] == 3.0

    def test_l2_hit_rate(self):
        s = stats_with(global_transactions=10, l2_hit_transactions=4)
        assert s.l2_hit_rate == pytest.approx(0.4)
        assert KernelStats().l2_hit_rate == 0.0

    def test_as_dict_flattens(self):
        s = KernelStats()
        s.extra["foo"] = 2.5
        d = s.as_dict()
        assert d["extra.foo"] == 2.5
        assert "warp_instructions" in d
