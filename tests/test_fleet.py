"""Sharded serve fleet: hashring, slicing, wire, pool, router.

Three layers of coverage:

* **pure units** — consistent-hash placement properties (determinism,
  the stability bound under join/leave, uniform spread), scatter/gather
  slicing round-trips, wire payload conversion, metric-export merging;
* **process pool** — dotted-path jobs execute in order, child failures
  surface with tracebacks;
* **fleet integration** — a real router + worker processes: broadcast
  registration, routed and scattered submits bit-identical to a
  single-process oracle, one-seed reproducibility, worker-death breaker
  trips and rehashing, strict-JSON aggregate snapshots (``None`` —
  never ``NaN`` — for empty-worker fleets), and the drain-or-fail exit
  accounting.  Workers run unpinned here: CI runners share cores.
"""

import json

import numpy as np
import pytest

from repro.fleet import FleetConfig, FleetRouter, HashRing, ProcessPool
from repro.fleet.hashring import stable_hash
from repro.fleet.pool import PoolJobError
from repro.fleet.router import FleetServer, _aggregate_stats, _weighted_mean
from repro.fleet.slicing import gather, gather_arrays, scatter, scatter_slices
from repro.fleet.wire import make_chaos_payload, to_jsonable
from repro.fleet.worker import derive_seed
from repro.gpusim.faults import ChaosConfig
from repro.points.datasets import dataset_by_name
from repro.service.service import ServiceConfig, TraversalService
from repro.telemetry import (
    MetricsRegistry,
    expose_export_text,
    merge_labeled_exports,
    sum_exports,
)

from tests.test_serve import assert_valid_prometheus


# -- consistent hashing ----------------------------------------------------


KEYS = [f"session-{i}" for i in range(2000)]


def test_stable_hash_is_process_independent():
    # Pinned value: SHA-1 is stable across runs, machines, and Python
    # versions (unlike the salted builtin hash()).
    assert stable_hash("session-0") == stable_hash("session-0")
    assert stable_hash("a") != stable_hash("b")
    # Two independent rings agree on every placement.
    r1 = HashRing(["w0", "w1", "w2"])
    r2 = HashRing(["w2", "w0", "w1"])  # insertion order must not matter
    assert [r1.place(k) for k in KEYS] == [r2.place(k) for k in KEYS]


def test_hashring_membership_errors():
    ring = HashRing(["w0"])
    with pytest.raises(ValueError):
        ring.add("w0")
    assert ring.remove("nope") is False
    assert ring.remove("w0") is True
    assert ring.place("anything") is None  # empty ring


def test_hashring_remove_only_moves_departed_keys():
    # Stability: removing a worker relocates exactly the keys it owned;
    # every other placement is untouched.
    ring = HashRing(["w0", "w1", "w2", "w3"])
    before = {k: ring.place(k) for k in KEYS}
    ring.remove("w2")
    after = {k: ring.place(k) for k in KEYS}
    for k in KEYS:
        if before[k] != "w2":
            assert after[k] == before[k]
        else:
            assert after[k] != "w2"


def test_hashring_join_moves_bounded_fraction():
    # Adding one worker to n-1 should move about 1/n of the keys —
    # exactly the ones the newcomer takes — and nothing else moves
    # anywhere but to the newcomer.
    n = 5
    ring = HashRing([f"w{i}" for i in range(n - 1)])
    before = {k: ring.place(k) for k in KEYS}
    ring.add(f"w{n - 1}")
    after = {k: ring.place(k) for k in KEYS}
    moved = [k for k in KEYS if after[k] != before[k]]
    assert all(after[k] == f"w{n - 1}" for k in moved)
    # Expected fraction 1/n = 0.2; allow generous variance for the
    # finite virtual-node count.
    frac = len(moved) / len(KEYS)
    assert 0.05 < frac < 0.45, f"join moved {frac:.1%} of keys"


def test_hashring_leave_and_rejoin_restores_placement_exactly():
    # The property session replay rests on: vnode positions are
    # stable_hash(f"{worker}#{r}") — pure functions of the worker id —
    # so remove + add restores the pre-departure placement bit for bit
    # and replayed sessions land back on their original shard.
    for n in (2, 3, 5, 8):
        ring = HashRing([f"w{i}" for i in range(n)])
        before = {k: ring.place(k) for k in KEYS}
        for victim in (f"w{n // 2}", "w0"):
            assert ring.remove(victim) is True
            ring.add(victim)
            after = {k: ring.place(k) for k in KEYS}
            assert after == before, f"rejoin of {victim} moved keys (n={n})"


def test_hashring_spread_is_roughly_uniform():
    workers = [f"w{i}" for i in range(4)]
    counts = HashRing(workers).spread(KEYS)
    assert sum(counts.values()) == len(KEYS)
    mean = len(KEYS) / len(workers)
    for w, c in counts.items():
        assert 0.45 * mean < c < 1.8 * mean, f"{w} owns {c} of {len(KEYS)}"


# -- scatter/gather slicing ------------------------------------------------


@pytest.mark.parametrize("n,shards", [(0, 3), (1, 4), (7, 3), (12, 4), (5, 8)])
def test_scatter_slices_partition(n, shards):
    slices = scatter_slices(n, shards)
    assert len(slices) == shards
    covered = [i for s in slices for i in range(s.start, s.stop)]
    assert covered == list(range(n))  # contiguous, in order, complete
    sizes = [s.stop - s.start for s in slices]
    assert max(sizes) - min(sizes) <= 1  # balanced


def test_scatter_slices_rejects_bad_args():
    with pytest.raises(ValueError):
        scatter_slices(4, 0)
    with pytest.raises(ValueError):
        scatter_slices(-1, 2)


def test_scatter_gather_round_trip():
    rng = np.random.default_rng(0)
    coords = rng.normal(size=(23, 3))
    parts = scatter(coords, 4)
    rows = gather([[tuple(row) for row in part] for part in parts])
    assert rows == [tuple(row) for row in coords]
    arrays = gather_arrays([{"x": p} for p in parts])
    np.testing.assert_array_equal(arrays["x"], coords)
    assert gather_arrays([{}, {}]) == {}


# -- wire payloads ---------------------------------------------------------


def test_to_jsonable_strips_numpy_and_nonfinite():
    payload = {
        "arr": np.arange(3, dtype=np.float64),
        "nan": float("nan"),
        "inf": np.float64("inf"),
        "nested": [np.int32(7), {"f": np.float32(1.5)}],
        "keep": "text",
    }
    out = to_jsonable(payload)
    assert out["arr"] == [0.0, 1.0, 2.0]
    assert out["nan"] is None and out["inf"] is None
    assert out["nested"] == [7, {"f": 1.5}]
    # The whole point: strict JSON never sees a NaN token.
    json.dumps(out, allow_nan=False)


def test_chaos_payload_round_trips():
    chaos = ChaosConfig(seed=5, p_backend_error=0.2, targets=("lockstep",))
    payload = make_chaos_payload(chaos)
    rebuilt = ChaosConfig(
        **{**payload, "targets": tuple(payload["targets"])}
    )
    assert rebuilt.seed == 5 and rebuilt.p_backend_error == 0.2
    assert make_chaos_payload(None) is None


def test_derive_seed_is_stable_and_distinct():
    assert derive_seed(7, 0, "load") == derive_seed(7, 0, "load")
    assert derive_seed(7, 0, "load") != derive_seed(7, 1, "load")
    assert derive_seed(7, 0, "load") != derive_seed(7, 0, "service")
    assert derive_seed(8, 0, "load") != derive_seed(7, 0, "load")


# -- metric export merging -------------------------------------------------


def _worker_export(batches: int, lat: float) -> dict:
    reg = MetricsRegistry()
    c = reg.counter("svc_batches_total", "batches", labels=("backend",))
    c.inc(batches, backend="lockstep")
    g = reg.gauge("svc_queue_depth", "depth")
    g.set(batches / 2)
    h = reg.histogram("svc_latency_ms", "latency", buckets=(1.0, 10.0))
    h.observe(lat)
    return reg.to_dict()


def test_merge_labeled_exports_tags_every_series():
    merged = merge_labeled_exports(
        {"w0": _worker_export(3, 0.5), "w1": _worker_export(5, 20.0)}
    )
    series = merged["svc_batches_total"]["series"]
    assert {s["labels"]["worker"] for s in series} == {"w0", "w1"}
    assert all(s["labels"]["backend"] == "lockstep" for s in series)
    text = expose_export_text(merged)
    assert_valid_prometheus(text)
    assert 'worker="w0"' in text and 'worker="w1"' in text


def test_merge_labeled_exports_rejects_conflicts():
    export = _worker_export(1, 1.0)
    with pytest.raises(ValueError):
        merge_labeled_exports({"w0": export}, label="backend")  # label taken
    other = {
        "svc_batches_total": {"kind": "gauge", "help": "", "series": []}
    }
    with pytest.raises(ValueError):
        merge_labeled_exports({"w0": export, "w1": other})  # kind mismatch


def test_sum_exports_sums_and_merges():
    summed = sum_exports({"w0": _worker_export(3, 0.5), "w1": _worker_export(5, 20.0)})
    [batches] = summed["svc_batches_total"]["series"]
    assert batches["value"] == 8
    [lat] = summed["svc_latency_ms"]["series"]
    assert lat["count"] == 2 and lat["counts"] == [1, 0, 1]
    assert lat["sum"] == pytest.approx(20.5)
    assert_valid_prometheus(expose_export_text(summed))


# -- process pool ----------------------------------------------------------


def test_process_pool_runs_jobs_in_order():
    with ProcessPool(3) as pool:
        results = pool.run(
            "tests.fleet_jobs:square", [{"x": i} for i in range(10)]
        )
    assert results == [i * i for i in range(10)]


def test_process_pool_surfaces_child_failure():
    with ProcessPool(2) as pool:
        with pytest.raises(PoolJobError, match="kaboom"):
            pool.run(
                "tests.fleet_jobs:boom", [{"message": "kaboom"}]
            )


def test_process_pool_surfaces_sigkilled_child_without_hanging():
    # A SIGKILLed child leaves only an EOF behind; the pool must raise
    # a typed error naming the worker, its exit code, and the jobs it
    # took down — and must not hang the wait loop (benchmarks.perf
    # --jobs N depends on exactly this).
    with ProcessPool(2) as pool:
        with pytest.raises(PoolJobError, match=r"died") as err:
            pool.run("tests.fleet_jobs:suicide", [{}, {}, {}])
    msg = str(err.value)
    assert "exitcode" in msg and "unfinished jobs" in msg


# -- statsz aggregation (pure) ---------------------------------------------


def test_weighted_mean_is_none_not_nan_when_empty():
    assert _weighted_mean([]) is None
    assert _weighted_mean([(None, 0.0), (None, 0.0)]) is None
    assert _weighted_mean([(2.0, 1.0), (4.0, 3.0)]) == pytest.approx(3.5)


def test_aggregate_stats_of_idle_workers_is_strict_json():
    # The empty-worker fix: freshly booted workers have no latency
    # samples; the aggregate must say None, never NaN.
    idle = {"queries_completed": 0, "p50_latency_ms": None,
            "p95_latency_ms": None, "sessions": 2, "resilience": {}}
    agg = _aggregate_stats([dict(idle), dict(idle)])
    assert agg["p50_latency_ms"] is None
    assert agg["p95_latency_ms"] is None
    assert agg["queries_completed"] == 0
    json.dumps(agg, allow_nan=False)


# -- fleet integration -----------------------------------------------------


N_DATA = 256


def _fleet(workers=2, **kw) -> FleetRouter:
    cfg = FleetConfig(
        workers=workers,
        pin_cpus=False,
        scatter_threshold=kw.pop("scatter_threshold", 8),
        call_timeout_s=60.0,
        service=kw.pop("service", {"max_batch": 64, "max_wait_ms": 2.0}),
        **kw,
    )
    router = FleetRouter(cfg)
    router.start()
    return router


def _register_geo(router, n=N_DATA, seed=7):
    geo = dataset_by_name("geocity", n, seed=seed)
    router.register("pc-geocity", "pc", geo.points, radius=0.1, leaf_size=4)
    return geo


def test_fleet_scatter_matches_single_process_oracle():
    router = _fleet(workers=3)
    try:
        geo = _register_geo(router)
        rng = np.random.default_rng(1)
        big = geo.points[rng.integers(0, N_DATA, size=40)]
        res = router.submit_many("pc-geocity", big, now=20.0)
        assert len(res) == 40 and all(r["ok"] for r in res)

        # Oracle: one plain TraversalService with worker 0's derived
        # seed executing the identical batch unsliced.
        svc = TraversalService(
            ServiceConfig(
                max_batch=64, max_wait_ms=2.0,
                seed=derive_seed(7, 0, "service"),
            )
        )
        svc.register("pc-geocity", "pc", geo.points, radius=0.1, leaf_size=4)
        svc.advance(20.0)
        tickets = [svc.submit("pc-geocity", c, now=svc.now_ms) for c in big]
        svc.flush()
        for row, ticket in zip(res, tickets):
            assert ticket.ok
            for key, expected in ticket.result.items():
                np.testing.assert_array_equal(row["result"][key], expected)
    finally:
        report = router.drain()
    assert report["ok"]
    assert all(e["exitcode"] == 0 for e in report["workers"].values())


def test_fleet_small_batch_routes_to_placed_shard():
    router = _fleet(workers=2, scatter_threshold=64)
    try:
        geo = _register_geo(router)
        res = router.submit_many("pc-geocity", geo.points[:4], now=5.0)
        assert len(res) == 4 and all(r["ok"] for r in res)
        owner = router.place("pc-geocity")
        assert router._m["routed"].value(worker=owner) == 1
        assert router._m["scattered"].value() == 0
    finally:
        router.drain()


def test_fleet_is_reproducible_from_one_seed():
    def run_once():
        router = _fleet(workers=2, seed=11)
        try:
            _register_geo(router)
            replies = router.run_load(
                ticks=4, queries_per_tick=6, keep_results=True
            )
            return {
                w: [(r["session"], tuple(np.asarray(r["coords"]).tolist()))
                    for r in reply["results"]]
                for w, reply in replies.items()
            }
        finally:
            router.drain()

    first, second = run_once(), run_once()
    assert first == second
    # Shared-nothing workers must not replay each other's streams.
    assert first["w0"] != first["w1"]


def test_fleet_worker_death_trips_breaker_and_rehashes():
    router = _fleet(workers=3)
    try:
        geo = _register_geo(router)
        victim = router.handles["w1"]
        victim.proc.terminate()
        victim.proc.join()

        health = router.healthz()
        assert health["status"] == "degraded"
        assert health["workers"]["w1"]["status"] == "dead"
        assert router.dead_workers() == ["w1"]

        # New placements avoid the dead shard entirely.
        places = {router.place(f"s{i}") for i in range(100)}
        assert "w1" not in places

        # Scatter over the survivors still resolves every row.
        rng = np.random.default_rng(2)
        big = geo.points[rng.integers(0, N_DATA, size=24)]
        res = router.submit_many("pc-geocity", big, now=9.0)
        assert len(res) == 24 and all(r["ok"] for r in res)
        assert router._m["deaths"].value(worker="w1") == 1
    finally:
        report = router.drain()
    # A dead worker makes the fleet drain not-ok by definition.
    assert not report["ok"]
    assert report["workers"]["w1"]["exitcode"] != 0
    assert report["workers"]["w0"]["exitcode"] == 0


def test_fleet_scatter_rechecks_live_set_at_dispatch():
    # Satellite fix: a breaker trip landing between submit_many's
    # admission check and the scatter must keep the dead shard out of
    # BOTH the slice computation and the dispatch — no rows may be
    # stranded on a worker known dead at dispatch time.
    router = _fleet(workers=3)
    try:
        geo = _register_geo(router)
        handle = router.handles["w1"]
        handle.breaker.trip("simulated concurrent trip")
        router.ring.remove("w1")
        res = router._scatter_submit("pc-geocity", geo.points[:24], 5.0)
        assert len(res) == 24 and all(r["ok"] for r in res)
        assert router._m["scatter_rows"].value(worker="w1") == 0
        assert router._m["scatter_rows"].value(worker="w0") > 0
    finally:
        # Un-trip so the (still healthy) process drains clean.
        handle.breaker.close()
        router.ring.add("w1")
        report = router.drain()
    assert report["ok"]


def test_fleet_scatter_retries_rows_lost_to_midflight_death():
    # A worker SIGKILLed while the router still believes it is live:
    # the scatter discovers the death on the wire and the one-shot
    # retry resolves every stranded row on the survivors — slower but
    # correct, never typed-error rows.
    router = _fleet(workers=3)
    try:
        geo = _register_geo(router)
        victim = router.handles["w2"]
        victim.proc.kill()
        victim.proc.join()
        res = router.submit_many("pc-geocity", geo.points[:24], now=5.0)
        assert len(res) == 24 and all(r["ok"] for r in res)
        assert router._m["scatter_retries"].value() == 1
        assert router.dead_workers() == ["w2"]
    finally:
        report = router.drain()
    assert not report["ok"]  # unhealed death still taints the drain


def test_fleet_statsz_and_endpoints_are_strict_json():
    router = _fleet(workers=2)
    server = FleetServer(router)
    try:
        # No sessions, no load: the empty-fleet snapshot must still be
        # strict JSON with None (not NaN) aggregates.
        snap = router.statsz()
        assert snap["aggregate"]["p50_latency_ms"] is None
        assert snap["aggregate"]["queries_completed"] == 0
        json.dumps(snap, allow_nan=False)

        _register_geo(router)
        router.run_load(ticks=2, queries_per_tick=4)

        status, ctype, body = server.respond("/statsz")
        assert status == 200 and "json" in ctype
        parsed = json.loads(body)
        assert parsed["aggregate"]["queries_completed"] > 0
        assert parsed["aggregate"]["workers_reporting"] == 2

        status, _, body = server.respond("/healthz")
        assert status == 200 and json.loads(body)["ok"]

        status, ctype, body = server.respond("/metrics")
        text = body.decode()
        assert status == 200
        assert_valid_prometheus(text)
        assert 'worker="w0"' in text and 'worker="w1"' in text
        assert "fleet_workers" in text

        status, _, _ = server.respond("/nope")
        assert status == 404
    finally:
        report = router.drain()
    assert report["ok"]
