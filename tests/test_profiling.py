"""Traversal-similarity profiling tests (Section 4.4)."""

import numpy as np
import pytest

from repro.core.profiling import jaccard, sample_similarity


class TestJaccard:
    def test_identical(self):
        a = np.array([1, 2, 3])
        assert jaccard(a, a) == 1.0

    def test_disjoint(self):
        assert jaccard(np.array([1, 2]), np.array([3, 4])) == 0.0

    def test_partial_overlap(self):
        assert jaccard(np.array([1, 2, 3]), np.array([2, 3, 4])) == pytest.approx(0.5)

    def test_duplicates_ignored(self):
        assert jaccard(np.array([1, 1, 2, 2]), np.array([1, 2])) == 1.0

    def test_both_empty(self):
        assert jaccard(np.empty(0, int), np.empty(0, int)) == 1.0

    def test_one_empty(self):
        assert jaccard(np.empty(0, int), np.array([1])) == 0.0


class TestSampleSimilarity:
    def test_identical_traversals_recommend_lockstep(self):
        sim = sample_similarity(lambda p: np.arange(50), n_points=100)
        assert sim.mean_jaccard == 1.0
        assert sim.recommend_lockstep

    def test_disjoint_traversals_recommend_nonlockstep(self):
        sim = sample_similarity(
            lambda p: np.arange(p * 100, p * 100 + 10), n_points=100
        )
        assert sim.mean_jaccard == 0.0
        assert not sim.recommend_lockstep

    def test_threshold_boundary(self):
        sim = sample_similarity(
            lambda p: np.arange(50), n_points=10, threshold=1.0
        )
        assert sim.recommend_lockstep  # mean == threshold passes (>=)

    def test_neighbor_distance(self):
        # Points i and i+2 share nothing; i and i+1 share everything.
        def visit(p):
            return np.arange((p // 2) * 100, (p // 2) * 100 + 10)

        near = sample_similarity(visit, n_points=100, neighbor_distance=2, seed=1)
        assert near.mean_jaccard == 0.0

    def test_deterministic_given_seed(self):
        def visit(p):
            return np.arange(p % 7)

        a = sample_similarity(visit, n_points=50, seed=3)
        b = sample_similarity(visit, n_points=50, seed=3)
        assert a == b

    def test_errors(self):
        with pytest.raises(ValueError, match="two points"):
            sample_similarity(lambda p: np.arange(3), n_points=1)
        with pytest.raises(ValueError, match="threshold"):
            sample_similarity(lambda p: np.arange(3), n_points=10, threshold=2.0)
        with pytest.raises(ValueError, match="neighbor_distance"):
            sample_similarity(lambda p: np.arange(3), n_points=5, neighbor_distance=9)

    def test_sorted_vs_shuffled_real_app(self, pc_app, points3d):
        """Morton-sorted PC points look similar; shuffled do not (on
        average, by a wide margin)."""
        from repro.cpusim.recursive import RecursiveInterpreter
        from repro.points.sorting import shuffled_order
        from repro.apps.pointcorr import build_pointcorr_app

        interp_sorted = RecursiveInterpreter(
            pc_app.spec, pc_app.tree, pc_app.make_ctx()
        )
        sim_sorted = sample_similarity(
            interp_sorted.run_point, pc_app.n_points, n_samples=6, seed=2
        )
        app_shuf = build_pointcorr_app(
            points3d, shuffled_order(len(points3d), 9), radius=0.25, leaf_size=4
        )
        interp_shuf = RecursiveInterpreter(
            app_shuf.spec, app_shuf.tree, app_shuf.make_ctx()
        )
        sim_shuf = sample_similarity(
            interp_shuf.run_point, app_shuf.n_points, n_samples=6, seed=2
        )
        assert sim_sorted.mean_jaccard > sim_shuf.mean_jaccard
