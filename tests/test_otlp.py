"""OTLP/JSON egress: encoding, delivery, and drop-not-block semantics.

The exporter's contract is that the serve path never blocks and never
raises on collector failure: spans are buffered (bounded, drop-oldest)
and an unreachable collector drops the batch and counts it.  Delivery
runs against the in-process stub from tests/otlp_stub.py — the same
stub the CI otlp-smoke job launches as a subprocess.
"""

import json

import pytest

from repro.telemetry import Tracer
from repro.telemetry.metrics import MetricsRegistry
from repro.telemetry.otlp import (
    OTLPExporter,
    encode_batch,
    otlp_span_id,
    otlp_trace_id,
    span_to_otlp,
)
from tests.otlp_stub import OTLPCollectorStub


def _spans(n: int = 3, seed: int = 7):
    tracer = Tracer(trace_seed=seed)
    tracer.enable_outbox()
    tracer.begin("batch", "batch", "b0", 0.0, size=n)
    for i in range(n):
        tracer.complete("q", "query", f"q{i}", 0.0, 1.0 + i,
                        parent_id="b0", session="s")
    tracer.end("b0", 5.0)
    return tracer.drain_outbox()


class TestEncoding:
    def test_ids_are_otlp_shaped(self):
        assert len(otlp_trace_id("t0")) == 32
        assert len(otlp_span_id("b0:launch")) == 16
        # Already-32-hex trace ids pass through unchanged.
        hex_id = "ab" * 16
        assert otlp_trace_id(hex_id) == hex_id

    def test_ids_are_deterministic(self):
        assert otlp_span_id("b0") == otlp_span_id("b0")
        assert otlp_span_id("b0") != otlp_span_id("b1")

    def test_span_mapping(self):
        span = _spans(1)[-1]  # the batch span (ended last)
        out = span_to_otlp(span)
        assert out["name"] == "batch"
        assert out["traceId"] == otlp_trace_id(span["trace_id"])
        assert out["spanId"] == otlp_span_id(f"{span['trace_id']}:b0")
        assert out["status"] == {"code": 1}
        assert int(out["endTimeUnixNano"]) == int(5.0 * 1e6)

    def test_parent_link_survives_reencoding(self):
        spans = _spans(1)
        child = next(s for s in spans if s["span_id"] == "q0")
        out = span_to_otlp(child)
        assert out["parentSpanId"] == otlp_span_id(
            f"{child['trace_id']}:b0"
        )

    def test_span_ids_unique_across_workers(self):
        """Two workers both number their first batch ``b0``; the trace
        salt keeps their OTLP span ids distinct after the fleet merge."""
        a = span_to_otlp(_spans(1, seed=1)[-1])
        b = span_to_otlp(_spans(1, seed=2)[-1])
        assert a["spanId"] != b["spanId"]
        assert a["traceId"] != b["traceId"]

    def test_error_status(self):
        out = span_to_otlp({"span_id": "x", "status": "backend-error",
                            "t_start_ms": 0.0})
        assert out["status"]["code"] == 2
        assert "backend-error" in out["status"]["message"]

    def test_batch_is_strict_json(self):
        body = encode_batch(_spans(), service_name="repro-test")
        text = json.dumps(body, allow_nan=False)
        back = json.loads(text)
        rs = back["resourceSpans"][0]
        attrs = {a["key"]: a["value"] for a in rs["resource"]["attributes"]}
        assert attrs["service.name"] == {"stringValue": "repro-test"}
        assert len(rs["scopeSpans"][0]["spans"]) == 4


class TestDelivery:
    def test_spans_reach_the_stub_with_parentage(self):
        with OTLPCollectorStub() as stub:
            exporter = OTLPExporter(stub.endpoint, flush_ms=10_000.0)
            exporter.export(_spans(2))
            delivered = exporter.flush()
            assert delivered == 3
            received = stub.spans()
        assert len(received) == 3
        by_id = {s["spanId"]: s for s in received}
        trace_key = _spans(1)[-1]["trace_id"]
        batch_id = otlp_span_id(f"{trace_key}:b0")
        assert batch_id in by_id
        children = [s for s in received
                    if s.get("parentSpanId") == batch_id]
        assert len(children) == 2
        assert all(s["traceId"] == by_id[batch_id]["traceId"]
                   for s in children)
        assert exporter.stats()["posts_ok"] == 1

    def test_source_pull_on_flush(self):
        tracer = Tracer(trace_seed=1)
        tracer.enable_outbox()
        with OTLPCollectorStub() as stub:
            exporter = OTLPExporter(
                stub.endpoint, source=tracer.drain_outbox
            )
            tracer.complete("q", "query", "q0", 0.0, 1.0)
            assert exporter.flush() == 1
            assert len(stub.spans()) == 1

    def test_background_thread_lifecycle(self):
        with OTLPCollectorStub() as stub:
            exporter = OTLPExporter(stub.endpoint, flush_ms=20.0)
            exporter.start()
            exporter.start()  # idempotent
            exporter.export(_spans(1))
            exporter.stop(flush=True)
            assert exporter.stats()["spans_exported"] == 2
            assert len(stub.spans()) == 2


class TestDropNotBlock:
    def test_unreachable_collector_drops_and_counts(self):
        stub = OTLPCollectorStub().start()
        endpoint = stub.endpoint
        stub.stop()  # port now refuses connections
        exporter = OTLPExporter(endpoint, timeout_s=0.5)
        exporter.export(_spans(2))
        assert exporter.flush() == 0  # never raises
        stats = exporter.stats()
        assert stats["post_failures"] == 1
        assert stats["spans_dropped"] == 3
        assert stats["spans_exported"] == 0
        assert stats["pending"] == 0  # the buffer belongs to new spans

    def test_buffer_overflow_drops_oldest(self):
        exporter = OTLPExporter("http://127.0.0.1:1/v1/traces", max_buffer=2)
        exporter.export([{"span_id": f"s{i}"} for i in range(5)])
        assert exporter.pending() == 2
        assert exporter.stats()["spans_dropped"] == 3

    def test_collector_death_mid_run_only_counts(self):
        """The satellite-5 scenario in miniature: collector dies between
        flushes; later spans are dropped + counted, nothing raises, and
        a recovered buffer keeps accepting spans."""
        stub = OTLPCollectorStub().start()
        exporter = OTLPExporter(stub.endpoint, timeout_s=0.5)
        exporter.export(_spans(1))
        assert exporter.flush() == 2
        stub.stop()  # the mid-run kill
        exporter.export(_spans(1))
        assert exporter.flush() == 0
        stats = exporter.stats()
        assert stats["spans_exported"] == 2
        assert stats["spans_dropped"] == 2
        assert stats["post_failures"] == 1

    def test_bad_config_rejected(self):
        with pytest.raises(ValueError):
            OTLPExporter("http://x", flush_ms=0)
        with pytest.raises(ValueError):
            OTLPExporter("http://x", max_buffer=0)


class TestMetricsMirror:
    def test_sync_metrics_is_delta_based(self):
        registry = MetricsRegistry()
        exporter = OTLPExporter("http://127.0.0.1:1/v1/traces", timeout_s=0.2)
        exporter.export(_spans(1))
        exporter.flush()  # fails: 2 spans dropped, 1 post failure
        exporter.sync_metrics(registry)
        exporter.sync_metrics(registry)  # second sync must not double
        export = registry.to_dict()
        assert export["otlp_spans_dropped_total"]["series"][0]["value"] == 2
        assert export["otlp_post_failures_total"]["series"][0]["value"] == 1
        assert "otlp_spans_exported_total" not in export or (
            export["otlp_spans_exported_total"]["series"] == []
        )
