"""OTLP/JSON egress: encoding, delivery, and drop-not-block semantics.

The exporter's contract is that the serve path never blocks and never
raises on collector failure: spans are buffered (bounded, drop-oldest)
and an unreachable collector drops the batch and counts it.  Delivery
runs against the in-process stub from tests/otlp_stub.py — the same
stub the CI otlp-smoke job launches as a subprocess.
"""

import json

import pytest

from repro.telemetry import EventLog, Tracer
from repro.telemetry.metrics import MetricsRegistry
from repro.telemetry.otlp import (
    OTLPExporter,
    encode_batch,
    encode_log_batch,
    encode_metrics_export,
    otlp_span_id,
    otlp_trace_id,
    record_to_otlp,
    signal_url,
    span_to_otlp,
)
from tests.otlp_stub import OTLPCollectorStub


def _spans(n: int = 3, seed: int = 7):
    tracer = Tracer(trace_seed=seed)
    tracer.enable_outbox()
    tracer.begin("batch", "batch", "b0", 0.0, size=n)
    for i in range(n):
        tracer.complete("q", "query", f"q{i}", 0.0, 1.0 + i,
                        parent_id="b0", session="s")
    tracer.end("b0", 5.0)
    return tracer.drain_outbox()


class TestEncoding:
    def test_ids_are_otlp_shaped(self):
        assert len(otlp_trace_id("t0")) == 32
        assert len(otlp_span_id("b0:launch")) == 16
        # Already-32-hex trace ids pass through unchanged.
        hex_id = "ab" * 16
        assert otlp_trace_id(hex_id) == hex_id

    def test_ids_are_deterministic(self):
        assert otlp_span_id("b0") == otlp_span_id("b0")
        assert otlp_span_id("b0") != otlp_span_id("b1")

    def test_span_mapping(self):
        span = _spans(1)[-1]  # the batch span (ended last)
        out = span_to_otlp(span)
        assert out["name"] == "batch"
        assert out["traceId"] == otlp_trace_id(span["trace_id"])
        assert out["spanId"] == otlp_span_id(f"{span['trace_id']}:b0")
        assert out["status"] == {"code": 1}
        assert int(out["endTimeUnixNano"]) == int(5.0 * 1e6)

    def test_parent_link_survives_reencoding(self):
        spans = _spans(1)
        child = next(s for s in spans if s["span_id"] == "q0")
        out = span_to_otlp(child)
        assert out["parentSpanId"] == otlp_span_id(
            f"{child['trace_id']}:b0"
        )

    def test_span_ids_unique_across_workers(self):
        """Two workers both number their first batch ``b0``; the trace
        salt keeps their OTLP span ids distinct after the fleet merge."""
        a = span_to_otlp(_spans(1, seed=1)[-1])
        b = span_to_otlp(_spans(1, seed=2)[-1])
        assert a["spanId"] != b["spanId"]
        assert a["traceId"] != b["traceId"]

    def test_error_status(self):
        out = span_to_otlp({"span_id": "x", "status": "backend-error",
                            "t_start_ms": 0.0})
        assert out["status"]["code"] == 2
        assert "backend-error" in out["status"]["message"]

    def test_batch_is_strict_json(self):
        body = encode_batch(_spans(), service_name="repro-test")
        text = json.dumps(body, allow_nan=False)
        back = json.loads(text)
        rs = back["resourceSpans"][0]
        attrs = {a["key"]: a["value"] for a in rs["resource"]["attributes"]}
        assert attrs["service.name"] == {"stringValue": "repro-test"}
        assert len(rs["scopeSpans"][0]["spans"]) == 4


class TestDelivery:
    def test_spans_reach_the_stub_with_parentage(self):
        with OTLPCollectorStub() as stub:
            exporter = OTLPExporter(stub.endpoint, flush_ms=10_000.0)
            exporter.export(_spans(2))
            delivered = exporter.flush()
            assert delivered == 3
            received = stub.spans()
        assert len(received) == 3
        by_id = {s["spanId"]: s for s in received}
        trace_key = _spans(1)[-1]["trace_id"]
        batch_id = otlp_span_id(f"{trace_key}:b0")
        assert batch_id in by_id
        children = [s for s in received
                    if s.get("parentSpanId") == batch_id]
        assert len(children) == 2
        assert all(s["traceId"] == by_id[batch_id]["traceId"]
                   for s in children)
        assert exporter.stats()["posts_ok"] == 1

    def test_source_pull_on_flush(self):
        tracer = Tracer(trace_seed=1)
        tracer.enable_outbox()
        with OTLPCollectorStub() as stub:
            exporter = OTLPExporter(
                stub.endpoint, source=tracer.drain_outbox
            )
            tracer.complete("q", "query", "q0", 0.0, 1.0)
            assert exporter.flush() == 1
            assert len(stub.spans()) == 1

    def test_background_thread_lifecycle(self):
        with OTLPCollectorStub() as stub:
            exporter = OTLPExporter(stub.endpoint, flush_ms=20.0)
            exporter.start()
            exporter.start()  # idempotent
            exporter.export(_spans(1))
            exporter.stop(flush=True)
            assert exporter.stats()["spans_exported"] == 2
            assert len(stub.spans()) == 2


class TestDropNotBlock:
    def test_unreachable_collector_drops_and_counts(self):
        stub = OTLPCollectorStub().start()
        endpoint = stub.endpoint
        stub.stop()  # port now refuses connections
        exporter = OTLPExporter(endpoint, timeout_s=0.5)
        exporter.export(_spans(2))
        assert exporter.flush() == 0  # never raises
        stats = exporter.stats()
        assert stats["post_failures"] == 1
        assert stats["spans_dropped"] == 3
        assert stats["spans_exported"] == 0
        assert stats["pending"] == 0  # the buffer belongs to new spans

    def test_buffer_overflow_drops_oldest(self):
        exporter = OTLPExporter("http://127.0.0.1:1/v1/traces", max_buffer=2)
        exporter.export([{"span_id": f"s{i}"} for i in range(5)])
        assert exporter.pending() == 2
        assert exporter.stats()["spans_dropped"] == 3

    def test_collector_death_mid_run_only_counts(self):
        """The satellite-5 scenario in miniature: collector dies between
        flushes; later spans are dropped + counted, nothing raises, and
        a recovered buffer keeps accepting spans."""
        stub = OTLPCollectorStub().start()
        exporter = OTLPExporter(stub.endpoint, timeout_s=0.5)
        exporter.export(_spans(1))
        assert exporter.flush() == 2
        stub.stop()  # the mid-run kill
        exporter.export(_spans(1))
        assert exporter.flush() == 0
        stats = exporter.stats()
        assert stats["spans_exported"] == 2
        assert stats["spans_dropped"] == 2
        assert stats["post_failures"] == 1

    def test_bad_config_rejected(self):
        with pytest.raises(ValueError):
            OTLPExporter("http://x", flush_ms=0)
        with pytest.raises(ValueError):
            OTLPExporter("http://x", max_buffer=0)


class TestSignalURLs:
    def test_urls_derive_from_one_endpoint(self):
        for base in ("http://h:4318", "http://h:4318/",
                     "http://h:4318/v1/traces", "http://h:4318/v1/logs"):
            assert signal_url(base, "traces") == "http://h:4318/v1/traces"
            assert signal_url(base, "logs") == "http://h:4318/v1/logs"
            assert signal_url(base, "metrics") == "http://h:4318/v1/metrics"


class TestLogEncoding:
    def _records(self):
        tracer = Tracer(trace_seed=7)
        log = EventLog(capacity=16, tracer=tracer)
        log.info("admission.shed", 1.0, trace_id="t-abc", span_id="b0",
                 session="s", cap=4)
        log.error("batch.failed", 2.0, error="backend-error")
        return log.records()

    def test_record_mapping(self):
        rec = self._records()[0]
        out = record_to_otlp(rec)
        assert out["severityNumber"] == 9
        assert out["severityText"] == "INFO"
        assert out["body"] == {"stringValue": "admission.shed"}
        assert out["traceId"] == otlp_trace_id("t-abc")
        assert out["spanId"] == otlp_span_id("t-abc:b0")
        assert int(out["timeUnixNano"]) == int(1.0 * 1e6)
        attrs = {a["key"]: a["value"] for a in out["attributes"]}
        assert attrs["session"] == {"stringValue": "s"}
        assert attrs["cap"] == {"intValue": "4"}

    def test_log_trace_ids_join_span_trace_ids(self):
        """The correlation contract: a log record stamped from a span's
        context re-encodes to the identical OTLP traceId/spanId."""
        rec = self._records()[0]
        span = {"trace_id": "t-abc", "span_id": "b0", "t_start_ms": 0.0}
        assert record_to_otlp(rec)["traceId"] == span_to_otlp(span)["traceId"]
        assert record_to_otlp(rec)["spanId"] == span_to_otlp(span)["spanId"]

    def test_unstamped_record_has_no_trace_id(self):
        out = record_to_otlp(self._records()[1])
        assert "traceId" not in out

    def test_log_batch_is_strict_json(self):
        body = encode_log_batch(self._records(), service_name="repro-test")
        back = json.loads(json.dumps(body, allow_nan=False))
        rl = back["resourceLogs"][0]
        assert len(rl["scopeLogs"][0]["logRecords"]) == 2


class TestMetricsEncoding:
    def _export(self):
        registry = MetricsRegistry()
        registry.counter("c_total", "c", labels=("kind",)).inc(3, kind="x")
        registry.gauge("g", "g").set(1.5)
        h = registry.histogram("h_ms", "h", buckets=(1.0, 10.0))
        h.observe(0.5, exemplar="t-abc")
        return registry.to_dict()

    def test_families_map_to_otlp_kinds(self):
        payload, points = encode_metrics_export(self._export(), t_ms=5.0)
        families = {
            m["name"]: m
            for m in payload["resourceMetrics"][0]["scopeMetrics"][0]["metrics"]
        }
        assert points == 3
        csum = families["c_total"]["sum"]
        assert csum["isMonotonic"] is True
        assert csum["aggregationTemporality"] == 2
        dp = csum["dataPoints"][0]
        assert dp["asDouble"] == 3.0
        assert dp["timeUnixNano"] == str(int(5.0 * 1e6))
        assert {a["key"] for a in dp["attributes"]} == {"kind"}
        assert families["g"]["gauge"]["dataPoints"][0]["asDouble"] == 1.5
        hist = families["h_ms"]["histogram"]["dataPoints"][0]
        assert hist["count"] == "1"
        assert hist["explicitBounds"] == [1.0, 10.0]

    def test_histogram_exemplars_carry_trace_ids(self):
        payload, _ = encode_metrics_export(self._export())
        families = {
            m["name"]: m
            for m in payload["resourceMetrics"][0]["scopeMetrics"][0]["metrics"]
        }
        exemplars = families["h_ms"]["histogram"]["dataPoints"][0]["exemplars"]
        assert exemplars[0]["traceId"] == otlp_trace_id("t-abc")
        assert exemplars[0]["asDouble"] == 0.5


class TestThreeSignalDelivery:
    def test_all_three_signals_reach_the_stub(self):
        registry = MetricsRegistry()
        registry.counter("c_total", "c").inc(2)
        with OTLPCollectorStub() as stub:
            exporter = OTLPExporter(stub.endpoint, flush_ms=10_000.0)
            exporter.metrics_source = registry.to_dict
            exporter.clock = lambda: 42.0
            exporter.export(_spans(1))
            exporter.export_logs(
                [{"level": "warn", "event": "retry", "t_ms": 1.0,
                  "trace_id": "t-abc", "seq": 0, "fields": {"attempt": 2}}]
            )
            exporter.flush()
            stats = exporter.stats()
            assert stats["posts_by_signal"] == {
                "traces": 1, "metrics": 1, "logs": 1,
            }
            assert stats["logs_exported"] == 1
            assert stats["metric_points_exported"] == 1
            assert stub.spans() and stub.log_records() and stub.metrics()
            assert stub.log_records()[0]["traceId"] == otlp_trace_id("t-abc")

    def test_log_buffer_overflow_drops_oldest(self):
        exporter = OTLPExporter("http://127.0.0.1:1", max_buffer=2)
        exporter.export_logs([{"seq": i} for i in range(5)])
        assert exporter.pending_logs() == 2
        assert exporter.stats()["logs_dropped"] == 3

    def test_unreachable_collector_counts_per_signal(self):
        registry = MetricsRegistry()
        registry.counter("c_total", "c").inc()
        stub = OTLPCollectorStub().start()
        endpoint = stub.endpoint
        stub.stop()
        exporter = OTLPExporter(endpoint, timeout_s=0.5)
        exporter.metrics_source = registry.to_dict
        exporter.export_logs([{"seq": 0, "level": "info", "event": "x"}])
        exporter.flush()  # never raises
        stats = exporter.stats()
        assert stats["post_failures_by_signal"]["logs"] == 1
        assert stats["post_failures_by_signal"]["metrics"] == 1
        assert stats["logs_dropped"] == 1
        assert stats["logs_exported"] == 0


class TestMetricsMirror:
    def test_sync_metrics_is_delta_based(self):
        registry = MetricsRegistry()
        exporter = OTLPExporter("http://127.0.0.1:1/v1/traces", timeout_s=0.2)
        exporter.export(_spans(1))
        exporter.flush()  # fails: 2 spans dropped, 1 post failure
        exporter.sync_metrics(registry)
        exporter.sync_metrics(registry)  # second sync must not double
        export = registry.to_dict()
        assert export["otlp_spans_dropped_total"]["series"][0]["value"] == 2
        failures = export["otlp_post_failures_total"]["series"]
        assert [(s["labels"], s["value"]) for s in failures] == [
            ({"signal": "traces"}, 1),
        ]
        assert "otlp_spans_exported_total" not in export or (
            export["otlp_spans_exported_total"]["series"] == []
        )

    def test_posts_mirror_carries_signal_labels(self):
        registry = MetricsRegistry()
        with OTLPCollectorStub() as stub:
            exporter = OTLPExporter(stub.endpoint, flush_ms=10_000.0)
            exporter.export(_spans(1))
            exporter.export_logs([{"seq": 0, "level": "info", "event": "x"}])
            exporter.flush()
        exporter.sync_metrics(registry)
        exporter.sync_metrics(registry)  # delta: no doubling
        series = registry.to_dict()["otlp_posts_total"]["series"]
        by_signal = {s["labels"]["signal"]: s["value"] for s in series}
        assert by_signal == {"traces": 1, "logs": 1}
        logs = registry.to_dict()["otlp_logs_exported_total"]["series"]
        assert logs[0]["value"] == 1
