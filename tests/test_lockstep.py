"""Lockstep transformation tests (Section 4)."""

import numpy as np
import pytest

from repro.core.annotations import Annotation
from repro.core.autoropes import apply_autoropes
from repro.core.ir import (
    ChildRef,
    CondRef,
    If,
    Recurse,
    Return,
    Seq,
    TraversalSpec,
    Update,
    UpdateRef,
)
from repro.core.lockstep import (
    LockstepNotApplicable,
    apply_lockstep,
    find_vote_conditions,
)


def _true(ctx, node, pt, args):
    return np.ones(len(node), dtype=bool)


def _noop(ctx, node, pt, args):
    return None


def _guided_spec(annotated: bool):
    return TraversalSpec(
        name="g",
        body=Seq(
            If(CondRef("prune"), Return()),
            If(
                CondRef("closer"),
                Seq(Recurse(ChildRef("left")), Recurse(ChildRef("right"))),
                Seq(Recurse(ChildRef("right")), Recurse(ChildRef("left"))),
            ),
        ),
        conditions={"prune": _true, "closer": _true},
        annotations=frozenset({Annotation.CALLSETS_EQUIVALENT}) if annotated else frozenset(),
    )


def _unguided_spec():
    return TraversalSpec(
        name="u",
        body=Seq(
            If(CondRef("prune"), Return()),
            If(
                CondRef("leaf", point_dependent=False),
                Seq(Update(UpdateRef("u")), Return()),
                Seq(Recurse(ChildRef("left")), Recurse(ChildRef("right"))),
            ),
        ),
        conditions={"prune": _true, "leaf": _true},
        updates={"u": _noop},
    )


class TestLegality:
    def test_unguided_applies_without_votes(self):
        kernel = apply_lockstep(apply_autoropes(_unguided_spec()))
        assert kernel.lockstep
        assert kernel.vote_conditions == frozenset()

    def test_guided_unannotated_rejected(self):
        with pytest.raises(LockstepNotApplicable, match="CALLSETS_EQUIVALENT"):
            apply_lockstep(apply_autoropes(_guided_spec(annotated=False)))

    def test_guided_annotated_gets_vote(self):
        kernel = apply_lockstep(apply_autoropes(_guided_spec(annotated=True)))
        assert kernel.lockstep
        assert kernel.vote_conditions == frozenset({"closer"})

    def test_idempotent(self):
        kernel = apply_lockstep(apply_autoropes(_unguided_spec()))
        assert apply_lockstep(kernel) is kernel


class TestVoteIdentification:
    def test_truncation_branch_is_not_a_vote(self):
        kernel = apply_autoropes(_unguided_spec())
        votes = find_vote_conditions(kernel.body)
        # leaf's THEN arm has no pushes -> not a call-set selector
        assert votes == set()

    def test_call_set_selector_is_a_vote(self):
        kernel = apply_autoropes(_guided_spec(annotated=True))
        assert find_vote_conditions(kernel.body) == {"closer"}

    def test_point_independent_selector_needs_no_vote(self):
        spec = TraversalSpec(
            name="s",
            body=If(
                CondRef("structural", point_dependent=False),
                Seq(Recurse(ChildRef("left")), Recurse(ChildRef("right"))),
                Seq(Recurse(ChildRef("right")), Recurse(ChildRef("left"))),
            ),
            conditions={"structural": _true},
            annotations=frozenset({Annotation.CALLSETS_EQUIVALENT}),
        )
        kernel = apply_lockstep(apply_autoropes(spec))
        # It selects call sets, but the node is warp-uniform under
        # lockstep, so no majority vote is required.
        assert kernel.vote_conditions == frozenset()


class TestCompiledApps:
    def test_guided_apps_have_expected_votes(self, compiled_apps):
        expect = {"knn": {"closer_to_left"}, "nn": {"closer_to_left"},
                  "vp": {"closer_inside"}}
        for name, votes in expect.items():
            assert set(compiled_apps[name].lockstep.vote_conditions) == votes, name

    def test_unguided_apps_have_no_votes(self, compiled_apps):
        for name in ("bh", "pc"):
            assert compiled_apps[name].lockstep.vote_conditions == frozenset()

    def test_all_apps_get_lockstep_variant(self, compiled_apps):
        for name, compiled in compiled_apps.items():
            assert compiled.lockstep is not None, name
