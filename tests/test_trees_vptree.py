"""VP-tree builder invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.vptree_nn import add_covering_balls
from repro.trees.vptree import build_vptree


def random_data(n, d=3, seed=0):
    return np.random.default_rng(seed).uniform(0, 1, size=(n, d))


def _subset(build, node):
    t = build.tree
    s = t.arrays["leaf_start"][node]
    c = t.arrays["leaf_count"][node]
    return build.point_order[s : s + c]


class TestStructure:
    def test_point_order_is_permutation(self):
        b = build_vptree(random_data(200), leaf_size=4)
        assert sorted(b.point_order.tolist()) == list(range(200))

    def test_validates(self):
        build_vptree(random_data(100, seed=1)).tree.validate()

    def test_inside_outside_radius_invariant(self):
        data = random_data(300, seed=2)
        b = build_vptree(data, leaf_size=4)
        t = b.tree
        for node in range(t.n_nodes):
            if t.arrays["is_leaf"][node]:
                continue
            v = t.arrays["vantage"][node]
            tau = t.arrays["tau"][node]
            i, o = t.children["inside"][node], t.children["outside"][node]
            if i >= 0:
                din = np.linalg.norm(data[_subset(b, i)] - v, axis=1)
                assert (din <= tau + 1e-9).all()
            if o >= 0:
                dout = np.linalg.norm(data[_subset(b, o)] - v, axis=1)
                assert (dout >= tau - 1e-9).all()

    def test_vantage_is_member_not_in_children(self):
        data = random_data(120, seed=3)
        b = build_vptree(data, leaf_size=2)
        t = b.tree
        for node in range(t.n_nodes):
            if t.arrays["is_leaf"][node]:
                continue
            vid = t.arrays["vantage_id"][node]
            assert vid >= 0
            np.testing.assert_allclose(t.arrays["vantage"][node], data[vid])
            for cname in ("inside", "outside"):
                c = t.children[cname][node]
                if c >= 0:
                    assert vid not in _subset(b, c)

    def test_leaf_size_respected(self):
        b = build_vptree(random_data(400, seed=4), leaf_size=8)
        t = b.tree
        leaves = t.arrays["is_leaf"]
        assert t.arrays["leaf_count"][leaves].max() <= 8

    def test_coincident_points(self):
        b = build_vptree(np.zeros((30, 3)), leaf_size=4)
        assert b.tree.arrays["is_leaf"].sum() >= 1

    def test_bad_inputs(self):
        with pytest.raises(ValueError):
            build_vptree(np.empty((0, 3)))
        with pytest.raises(ValueError):
            build_vptree(random_data(10), leaf_size=0)


class TestCoveringBalls:
    def test_balls_cover_subtrees(self):
        data = random_data(200, seed=5)
        b = build_vptree(data, leaf_size=4)
        add_covering_balls(b, data)
        t = b.tree
        for node in range(t.n_nodes):
            sub = data[_subset(b, node)]
            d = np.linalg.norm(sub - t.arrays["center"][node], axis=1)
            assert (d <= t.arrays["radius"][node] + 1e-9).all()

    @given(n=st.integers(2, 120), leaf=st.integers(1, 8), seed=st.integers(0, 300))
    @settings(max_examples=25, deadline=None)
    def test_cover_property(self, n, leaf, seed):
        data = random_data(n, d=2, seed=seed)
        b = build_vptree(data, leaf_size=leaf)
        add_covering_balls(b, data)
        t = b.tree
        root_d = np.linalg.norm(data - t.arrays["center"][t.root], axis=1)
        assert (root_d <= t.arrays["radius"][t.root] + 1e-9).all()
