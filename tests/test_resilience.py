"""Resilience layer tests: the typed error taxonomy, circuit breaker
state machine, deterministic retry backoff, chaos fault injection
(same seed => identical failure schedule), boundary validation,
admission control / load shedding, watchdog budgets with degraded-mode
failover, drain-or-fail ticket resolution, failure-driven plan-cache
invalidation, JSON-safe snapshots, and the chaos CLI audit."""

import json

import numpy as np
import pytest

from repro.gpusim.device import TESLA_C2070
from repro.gpusim.faults import ChaosConfig, FaultInjector, NO_FAULTS
from repro.gpusim.kernel import VisitBudgetExceeded, Watchdog
from repro.gpusim.stack import StackStorage
from repro.points.datasets import dataset_by_name
from repro.service import (
    BACKENDS,
    FALLBACK_CHAIN,
    AdaptiveDispatcher,
    BackendUnavailable,
    BudgetExhausted,
    CircuitBreaker,
    DeadlineExceeded,
    InvalidQuery,
    Overloaded,
    RetryPolicy,
    ServiceConfig,
    ServiceError,
    TraversalService,
)
from repro.service.__main__ import main as service_main
from repro.service.resilience import ERROR_CODES
from repro.service.resilience.breaker import (
    STATE_CLOSED,
    STATE_HALF_OPEN,
    STATE_OPEN,
)


@pytest.fixture(scope="module")
def random128():
    return dataset_by_name("random", 128, seed=5, dim=2).points


def make_service(data, **cfg):
    defaults = dict(max_batch=16, max_wait_ms=1.0, min_gpu_batch=4, seed=7)
    defaults.update(cfg)
    svc = TraversalService(ServiceConfig(**defaults))
    svc.register("s", app="nn", data=data)
    return svc


class TestErrorTaxonomy:
    def test_codes_and_retryability(self):
        assert InvalidQuery("x").code == "invalid_query"
        assert DeadlineExceeded("x").code == "deadline_exceeded"
        assert BudgetExhausted("x").retryable
        assert BackendUnavailable("x").retryable
        assert not Overloaded("x").retryable
        for code, cls in ERROR_CODES.items():
            assert cls.code == code
            assert issubclass(cls, ServiceError)

    def test_invalid_query_is_a_valueerror(self):
        # Backward compatibility: callers catching ValueError still work.
        with pytest.raises(ValueError):
            raise InvalidQuery("bad coords")

    def test_to_dict_is_json_safe(self):
        err = BackendUnavailable("gone", session="s", batch_id=3, backend="lockstep")
        d = json.loads(json.dumps(err.to_dict()))
        assert d["code"] == "backend_unavailable"
        assert d["backend"] == "lockstep" and d["batch_id"] == 3
        assert d["retryable"] is True


class TestCircuitBreaker:
    def test_trips_at_threshold_and_cools_down(self):
        b = CircuitBreaker("gpu", failure_threshold=3, cooldown_ms=10.0)
        assert b.state == STATE_CLOSED
        for t in range(2):
            b.record_failure(float(t))
            assert b.state == STATE_CLOSED and b.allow(float(t))
        b.record_failure(2.0)
        assert b.state == STATE_OPEN and b.trips == 1
        # Open: rejected until the cooldown elapses.
        assert not b.allow(5.0)
        assert b.rejections == 1
        # Cooldown over: half-open, one probe admitted.
        assert b.allow(12.0)
        assert b.state == STATE_HALF_OPEN

    def test_half_open_probe_success_closes(self):
        b = CircuitBreaker("gpu", failure_threshold=1, cooldown_ms=5.0)
        b.record_failure(0.0)
        assert b.allow(6.0)  # half-open probe
        b.record_success(6.0)
        assert b.state == STATE_CLOSED
        assert b.allow(6.0)

    def test_half_open_probe_failure_reopens(self):
        b = CircuitBreaker("gpu", failure_threshold=1, cooldown_ms=5.0)
        b.record_failure(0.0)
        assert b.allow(6.0)
        b.record_failure(6.0)
        assert b.state == STATE_OPEN and b.trips == 2
        # The cooldown re-armed from the re-trip time.
        assert not b.allow(8.0)
        assert b.allow(11.5)

    def test_probe_budget_is_bounded(self):
        b = CircuitBreaker("gpu", failure_threshold=1, cooldown_ms=1.0,
                           half_open_trials=2)
        b.record_failure(0.0)
        assert b.allow(2.0) and b.allow(2.0)  # two probes
        assert not b.allow(2.0)  # budget spent, no verdict yet
        assert b.snapshot().rejections == 1

    def test_success_resets_consecutive_count(self):
        b = CircuitBreaker("gpu", failure_threshold=2)
        b.record_failure(0.0)
        b.record_success(1.0)
        b.record_failure(2.0)
        assert b.state == STATE_CLOSED  # never two in a row


class TestRetryPolicy:
    def test_backoff_is_deterministic(self):
        p = RetryPolicy(seed=42)
        a = [p.backoff_ms(i, key=(9, 1)) for i in range(3)]
        b = [p.backoff_ms(i, key=(9, 1)) for i in range(3)]
        assert a == b
        assert a != [p.backoff_ms(i, key=(9, 2)) for i in range(3)]

    def test_backoff_grows_within_jitter_bounds(self):
        p = RetryPolicy(backoff_base_ms=1.0, backoff_multiplier=2.0, jitter=0.25)
        for attempt in range(4):
            nominal = 2.0**attempt
            got = p.backoff_ms(attempt, key=(0,))
            assert nominal * 0.75 <= got <= nominal * 1.25

    def test_zero_jitter_is_exact(self):
        p = RetryPolicy(backoff_base_ms=0.5, backoff_multiplier=3.0, jitter=0.0)
        assert p.schedule_ms() == [0.5, 1.5]

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=1.5)


class TestFaultInjector:
    CFG = ChaosConfig(
        seed=11, p_backend_error=0.5, p_stuck_warp=0.3, p_corrupt_stack=0.4,
        p_latency_spike=0.3, targets=("lockstep", "nonlockstep"),
    )

    def test_same_seed_same_schedule(self):
        a, b = FaultInjector(self.CFG), FaultInjector(self.CFG)
        plans_a = [a.plan(i, bk, t) for i in range(20)
                   for bk in BACKENDS for t in range(2)]
        plans_b = [b.plan(i, bk, t) for i in range(20)
                   for bk in BACKENDS for t in range(2)]
        assert plans_a == plans_b
        assert a.schedule() == b.schedule()
        assert any(p.any_armed for p in plans_a)  # rates high enough to fire

    def test_different_seed_different_schedule(self):
        other = ChaosConfig(**{**self.CFG.__dict__, "seed": 12})
        a, b = FaultInjector(self.CFG), FaultInjector(other)
        for i in range(20):
            a.plan(i, "lockstep", 0)
            b.plan(i, "lockstep", 0)
        assert a.schedule() != b.schedule()

    def test_untargeted_backend_is_safe(self):
        inj = FaultInjector(self.CFG)
        assert inj.plan(0, "cpu", 0) is NO_FAULTS
        assert inj.schedule() == ()

    def test_disabled_config_injects_nothing(self):
        inj = FaultInjector(ChaosConfig(seed=1))
        assert not inj.config.enabled
        assert inj.plan(0, "lockstep", 0) is NO_FAULTS

    def test_rate_validation(self):
        with pytest.raises(ValueError, match="p_backend_error"):
            ChaosConfig(p_backend_error=1.5)
        with pytest.raises(ValueError, match="latency_spike_factor"):
            ChaosConfig(latency_spike_factor=0.5)


class TestGpusimHooks:
    def test_watchdog_trips_past_budget(self):
        w = Watchdog(budget=5)
        for step in range(1, 6):
            w.tick(step)
        with pytest.raises(VisitBudgetExceeded) as ei:
            w.tick(6)
        assert ei.value.budget == 5

    def test_device_derate_slows_the_clock(self):
        slow = TESLA_C2070.derate(8.0)
        assert slow.clock_ghz == pytest.approx(TESLA_C2070.clock_ghz / 8.0)
        assert "derated" in slow.name
        assert TESLA_C2070.derate(1.0) is TESLA_C2070
        with pytest.raises(ValueError):
            TESLA_C2070.derate(0.5)

    def test_corrupt_top_overwrites_stack_head(self):
        from repro.gpusim.stack import RopeStackLayout
        from repro.gpusim.stats import KernelStats

        s = StackStorage(
            n_stacks=4,
            channels={"node": (np.int64, 1)},
            layout=RopeStackLayout.SHARED,
            device=TESLA_C2070,
            allocator=None,
            memory=None,
            stats=KernelStats(),
            lanes_per_access=4,
            account=False,
        )
        active = np.array([True, True, False, False])
        s.push(active, 0, node=np.array([3, 4, 0, 0]))
        hit = s.corrupt_top("node", 999)
        assert hit == 2  # only the two non-empty stacks
        popped = s.pop(active, 1)
        assert list(popped["node"][:2]) == [999, 999]


class TestBoundaryValidation:
    def test_nan_rejected(self, random128):
        svc = make_service(random128)
        with pytest.raises(InvalidQuery, match="non-finite"):
            svc.submit("s", [float("nan"), 0.5])
        assert svc.queue_depth == 0

    def test_inf_rejected(self, random128):
        svc = make_service(random128)
        with pytest.raises(InvalidQuery):
            svc.submit("s", [float("inf"), 0.5])

    def test_dim_mismatch_rejected(self, random128):
        svc = make_service(random128)
        with pytest.raises(InvalidQuery, match="coords"):
            svc.submit("s", [0.1, 0.2, 0.3])

    def test_query_many_rejects_atomically(self, random128):
        svc = make_service(random128)
        coords = np.random.default_rng(0).random((8, 2))
        coords[5, 0] = np.nan
        with pytest.raises(InvalidQuery, match="non-finite"):
            svc.query_many("s", coords)
        # Nothing half-submitted: one bad row rejects the whole call.
        assert svc.queue_depth == 0
        assert svc.stats().queries_submitted == 0

    def test_valid_query_still_flows(self, random128):
        svc = make_service(random128)
        t = svc.query("s", random128[0])
        assert t.ok and t.error is None


class TestAdmissionControl:
    def test_reject_new_raises_overloaded(self, random128):
        svc = make_service(
            random128, max_batch=64, max_wait_ms=100.0,
            max_queue_depth=2, shed_policy="reject-new",
        )
        svc.submit("s", random128[0], now=0.0)
        svc.submit("s", random128[1], now=0.0)
        with pytest.raises(Overloaded, match="rejected"):
            svc.submit("s", random128[2], now=0.0)
        assert svc.queue_depth == 2
        s = svc.stats()
        assert s.resilience.shed_rejected == 1
        assert s.resilience.errors["overloaded"] == 1

    def test_drop_oldest_sheds_the_head(self, random128):
        svc = make_service(
            random128, max_batch=64, max_wait_ms=100.0,
            max_queue_depth=2, shed_policy="drop-oldest",
        )
        first = svc.submit("s", random128[0], now=0.0)
        svc.submit("s", random128[1], now=0.0)
        third = svc.submit("s", random128[2], now=0.5)  # admitted
        assert svc.queue_depth == 2
        # The oldest ticket resolved with a typed error, not silently.
        assert first.done and not first.ok
        assert isinstance(first.error, Overloaded)
        assert not third.done
        s = svc.stats()
        assert s.resilience.shed_dropped == 1
        assert s.queries_failed == 1
        # The shed query still has an answer after flush for the rest.
        svc.flush()
        assert third.ok


class TestDegradedModeFailover:
    def test_budget_exhaustion_falls_back_to_cpu(self, random128):
        # A 3-step budget kills both GPU executors; the modeled CPU (no
        # watchdog) answers, and the answer is still correct.
        svc = make_service(random128, backend="lockstep", visit_budget=3,
                           breaker_cooldown_ms=1e9)
        t = svc.query("s", random128[0])
        assert t.ok and t.degraded and t.backend == "cpu"
        assert t.attempts > 1
        expected = svc.registry.get("s").oracle(random128[:1])
        assert np.isclose(t.result["nn_dist"], expected["nn_dist"][0])
        r = svc.stats().resilience
        assert r.degraded_batches == 1
        assert r.backend_failures["lockstep"] >= 1
        assert r.backend_failures["nonlockstep"] >= 1
        assert r.errors.get("budget_exhausted") is None  # served, not failed

    def test_breaker_trips_after_repeated_failures(self, random128):
        svc = make_service(
            random128, backend="lockstep", visit_budget=3,
            retry_max_attempts=3, breaker_threshold=3,
            breaker_cooldown_ms=1e9,
        )
        svc.query("s", random128[0])
        snaps = svc.dispatcher.breaker_snapshots()
        assert snaps["lockstep"].state == STATE_OPEN
        assert snaps["lockstep"].trips == 1
        # Next batch skips lockstep outright (breaker open -> rejected).
        svc.query("s", random128[1])
        assert svc.dispatcher.breaker_snapshots()["lockstep"].rejections >= 1

    def test_fallback_chain_shape(self):
        assert FALLBACK_CHAIN["lockstep"] == ("lockstep", "nonlockstep", "cpu")
        assert FALLBACK_CHAIN["cpu"] == ("cpu",)
        for chain in FALLBACK_CHAIN.values():
            assert chain[-1] == "cpu"  # every road ends at the safe harbor

    def test_chaos_corrupt_stack_failover_correct_results(self, random128):
        # Corrupt every lockstep attempt: the batch must fail over and
        # still return oracle-correct results.
        chaos = ChaosConfig(seed=3, p_corrupt_stack=1.0, targets=("lockstep",))
        svc = make_service(random128, backend="lockstep", chaos=chaos,
                           max_batch=32)
        tickets = svc.query_many("s", random128[:32])
        assert all(t.ok for t in tickets)
        assert all(t.degraded for t in tickets)
        expected = svc.registry.get("s").oracle(random128[:32])
        got = np.array([t.result["nn_id"] for t in tickets])
        assert np.array_equal(got, expected["nn_id"])
        r = svc.stats().resilience
        assert r.injected_faults.get("corrupt_stack", 0) >= 1


class TestDrainOrFail:
    def test_total_backend_failure_resolves_every_ticket(
        self, random128, monkeypatch
    ):
        svc = make_service(random128, retry_max_attempts=2)

        def boom(self, session, coords, backend, fault_plan=None):
            raise RuntimeError("kaboom")

        monkeypatch.setattr(AdaptiveDispatcher, "execute", boom)
        tickets = [svc.submit("s", c, now=0.0) for c in random128[:10]]
        svc.flush()
        # Drain-or-fail: every ticket resolved, nothing stranded.
        assert svc.queue_depth == 0
        assert all(t.done and not t.ok for t in tickets)
        assert all(isinstance(t.error, BackendUnavailable) for t in tickets)
        s = svc.stats()
        assert s.queries_failed == 10
        assert s.resilience.failed_batches == 1
        assert s.resilience.errors["backend_unavailable"] == 10

    def test_plan_invalidated_after_repeated_batch_failures(
        self, random128, monkeypatch
    ):
        svc = make_service(random128, retry_max_attempts=1,
                           plan_failure_threshold=2)

        def boom(self, session, coords, backend, fault_plan=None):
            raise RuntimeError("kaboom")

        monkeypatch.setattr(AdaptiveDispatcher, "execute", boom)
        for c in random128[:2]:
            svc.query("s", c)
        s = svc.stats()
        assert s.resilience.plan_invalidations == 1
        assert s.plan_cache.invalidations == 1
        # The recompiled plan serves fine once the backend heals.
        monkeypatch.undo()
        t = svc.query("s", random128[3])
        assert t.ok

    def test_flush_survives_a_poisoned_session(self, random128, monkeypatch):
        svc = make_service(random128, retry_max_attempts=1)
        svc.register("s2", app="nn", data=random128)
        calls = []
        real = AdaptiveDispatcher.execute

        def flaky(self, session, coords, backend, fault_plan=None):
            calls.append(session.name)
            if session.name == "s":
                raise RuntimeError("kaboom")
            return real(self, session, coords, backend, fault_plan)

        monkeypatch.setattr(AdaptiveDispatcher, "execute", flaky)
        bad = svc.submit("s", random128[0], now=0.0)
        good = svc.submit("s2", random128[1], now=0.0)
        svc.flush()
        # The failing session didn't strand the healthy one.
        assert bad.done and not bad.ok
        assert good.ok
        assert svc.queue_depth == 0


class TestDeadlines:
    def test_deadline_exceeded_is_typed(self, random128):
        svc = make_service(random128, deadline_ms=1e-9)
        t = svc.query("s", random128[0])
        assert t.done and not t.ok
        assert isinstance(t.error, DeadlineExceeded)
        s = svc.stats()
        assert s.resilience.deadline_misses == 1
        assert s.queries_failed == 1

    def test_generous_deadline_passes(self, random128):
        svc = make_service(random128, deadline_ms=1e9)
        t = svc.query("s", random128[0])
        assert t.ok and svc.stats().resilience.deadline_misses == 0


class TestSessionLifecycle:
    def test_unregister_is_idempotent(self, random128):
        svc = make_service(random128)
        pending = svc.submit("s", random128[0], now=0.0)
        assert svc.unregister("s") is True
        # Drain-or-fail: the pending query was flushed, not dropped.
        assert pending.done
        assert "s" not in svc.registry
        assert svc.unregister("s") is False  # second call: no-op
        with pytest.raises(KeyError):
            svc.submit("s", random128[0])

    def test_reregister_after_unregister_reuses_plan(self, random128):
        svc = make_service(random128)
        svc.query("s", random128[0])
        svc.unregister("s")
        svc.register("s", app="nn", data=random128)
        assert svc.stats().plan_cache.hits >= 1  # tree + plan were kept
        assert svc.query("s", random128[1]).ok


class TestChaosDeterminism:
    CHAOS = ChaosConfig(
        seed=21, p_backend_error=0.4, p_stuck_warp=0.2,
        p_corrupt_stack=0.3, p_latency_spike=0.2,
        targets=("lockstep", "nonlockstep"),
    )

    def run_trace(self, data, seed=21):
        svc = make_service(
            data, max_batch=8, chaos=self.CHAOS.__class__(
                **{**self.CHAOS.__dict__, "seed": seed}
            ),
        )
        rng = np.random.default_rng(0)
        now = 0.0
        tickets = []
        for c in data[rng.permutation(len(data))][:48]:
            now += 0.01
            svc.advance(now)
            tickets.append(svc.submit("s", c, now=now))
        svc.flush()
        return svc, tickets

    def test_same_seed_identical_run(self, random128):
        svc_a, t_a = self.run_trace(random128)
        svc_b, t_b = self.run_trace(random128)
        # Identical fault schedules...
        assert svc_a.dispatcher.injector.schedule() == (
            svc_b.dispatcher.injector.schedule()
        )
        # ... identical breaker histories ...
        assert svc_a.dispatcher.breaker_snapshots() == (
            svc_b.dispatcher.breaker_snapshots()
        )
        # ... identical resilience counters and outcomes.
        sa, sb = svc_a.stats(), svc_b.stats()
        assert sa.resilience == sb.resilience
        assert [(t.backend, t.attempts, t.ok) for t in t_a] == (
            [(t.backend, t.attempts, t.ok) for t in t_b]
        )

    def test_different_seed_diverges(self, random128):
        svc_a, _ = self.run_trace(random128, seed=21)
        svc_b, _ = self.run_trace(random128, seed=22)
        assert svc_a.dispatcher.injector.schedule() != (
            svc_b.dispatcher.injector.schedule()
        )

    def test_zero_lost_queries_under_chaos(self, random128):
        svc, tickets = self.run_trace(random128)
        assert all(t.done for t in tickets)  # nothing lost
        served = [t for t in tickets if t.ok]
        assert served  # chaos didn't take the whole service down
        coords = np.stack([t.coords for t in served])
        expected = svc.registry.get("s").oracle(coords)
        got_ids = np.array([t.result["nn_id"] for t in served])
        assert np.array_equal(got_ids, expected["nn_id"])


class TestSnapshotJsonSafety:
    def test_round_trip_no_nan(self, random128):
        svc = make_service(random128, chaos=ChaosConfig(
            seed=2, p_backend_error=0.5, targets=("lockstep", "nonlockstep"),
        ))
        svc.query_many("s", random128[:24])
        d = svc.stats().to_dict()
        # allow_nan=False would choke on any float("nan") sentinel left.
        text = json.dumps(d, allow_nan=False, default=str)
        back = json.loads(text)
        assert back["queries_submitted"] == 24
        assert "resilience" in back and "breakers" in back["resilience"]

    def test_empty_aggregates_are_none(self, random128):
        s = make_service(random128).stats()
        assert s.p50_latency_ms is None
        for b in s.backends.values():
            assert b.mean_work_expansion is None


class TestChaosCli:
    def test_chaos_demo_audit_passes(self, capsys):
        rc = service_main([
            "--chaos", "--queries", "60", "--data", "128",
            "--max-batch", "16", "--chaos-seed", "5",
            "--p-backend-error", "0.5", "--p-corrupt-stack", "0.5",
        ])
        out = capsys.readouterr().out
        assert rc == 0
        assert "chaos audit passed" in out
        assert "0 lost" in out and "0 oracle mismatches" in out

    def test_chaos_json_output_parses(self, capsys):
        rc = service_main([
            "--chaos", "--queries", "40", "--data", "128",
            "--max-batch", "16", "--json",
        ])
        assert rc == 0
        d = json.loads(capsys.readouterr().out)
        assert d["queries_submitted"] >= 40
