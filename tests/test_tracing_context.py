"""Distributed-tracing unit layer: TraceContext, ring, outbox, identity.

The cross-process pieces (router stamping, worker adoption, fleet
assembly) live in test_fleet_tracing.py; this file proves the tracer
primitives they build on — deterministic trace ids, context
activation/restore, parent inheritance, the bounded finished-span ring
(satellite: spans must not accumulate for the life of the process),
and the outbox that ships finished spans across the wire.
"""

import pytest

from repro.telemetry import Telemetry, TraceContext, Tracer, derive_trace_id
from repro.telemetry.tracing import DEFAULT_OUTBOX_CAPACITY


class TestDeriveTraceId:
    def test_deterministic_and_distinct(self):
        a = derive_trace_id(7, "ticket:0")
        assert a == derive_trace_id(7, "ticket:0")
        assert a != derive_trace_id(7, "ticket:1")
        assert a != derive_trace_id(8, "ticket:0")

    def test_shape(self):
        tid = derive_trace_id(0, "x")
        assert len(tid) == 32
        assert set(tid) <= set("0123456789abcdef")


class TestTraceContext:
    def test_wire_round_trip(self):
        ctx = TraceContext.derive(7, "ticket:3", "t3", clock_offset_ms=12.5)
        back = TraceContext.from_wire(ctx.to_wire())
        assert back == ctx

    def test_from_wire_none(self):
        assert TraceContext.from_wire(None) is None
        assert TraceContext.from_wire({}) is None

    def test_activation_stamps_new_spans(self):
        tracer = Tracer(trace_seed=7)
        ctx = TraceContext.derive(7, "ticket:0", "t0")
        prev = tracer.activate(ctx)
        assert prev is None
        span = tracer.begin("query", "query", "q1", 1.0)
        assert span.trace_id == ctx.trace_id
        assert span.parent_id == "t0"
        tracer.activate(prev)
        assert tracer.context is None

    def test_explicit_parent_keeps_context_trace(self):
        tracer = Tracer(trace_seed=7)
        tracer.activate(TraceContext.derive(7, "ticket:0", "t0"))
        tracer.begin("batch", "batch", "b0", 1.0)
        launch = tracer.begin("launch", "launch", "b0:launch", 2.0,
                              parent_id="b0")
        assert launch.parent_id == "b0"
        assert launch.trace_id == derive_trace_id(7, "ticket:0")

    def test_open_parent_inheritance_without_context(self):
        tracer = Tracer(trace_seed=3)
        parent = tracer.begin("batch", "batch", "b0", 1.0)
        child = tracer.begin("launch", "launch", "b0:launch", 2.0,
                             parent_id="b0")
        assert child.trace_id == parent.trace_id

    def test_local_identity_is_seed_derived(self):
        a = Tracer(trace_seed=7).begin("q", "query", "q1", 0.0)
        b = Tracer(trace_seed=7).begin("q", "query", "q1", 0.0)
        c = Tracer(trace_seed=8).begin("q", "query", "q1", 0.0)
        assert a.trace_id == b.trace_id == derive_trace_id(7, "q1")
        assert c.trace_id != a.trace_id


class TestRingBuffer:
    def test_evicts_oldest_and_counts(self):
        tracer = Tracer(max_spans=2)
        for i in range(4):
            tracer.complete("q", "query", f"q{i}", 0.0, 1.0)
        assert len(tracer) == 2
        assert tracer.dropped == 2
        kept = [s.span_id for s in tracer.spans()]
        assert kept == ["q2", "q3"]

    def test_on_drop_callback_fires_per_eviction(self):
        fired = []
        tracer = Tracer(max_spans=1)
        tracer.on_drop = lambda: fired.append(1)
        for i in range(3):
            tracer.complete("q", "query", f"q{i}", 0.0, 1.0)
        assert len(fired) == 2

    def test_facade_wires_dropped_counter(self):
        tel = Telemetry.on(max_spans=1)
        tel.tracer.complete("q", "query", "q0", 0.0, 1.0)
        tel.tracer.complete("q", "query", "q1", 0.0, 1.0)
        export = tel.registry.to_dict()
        family = export["tracer_spans_dropped_total"]
        assert family["series"][0]["value"] == 1

    def test_evicted_open_span_cannot_leak(self):
        tracer = Tracer(max_spans=1)
        tracer.begin("a", "query", "a", 0.0)
        tracer.begin("b", "query", "b", 1.0)  # evicts open span a
        assert tracer.end("a", 2.0) is None
        assert tracer.end("b", 2.0) is not None


class TestOutbox:
    def test_disabled_by_default(self):
        tracer = Tracer()
        tracer.complete("q", "query", "q0", 0.0, 1.0)
        assert not tracer.outbox_enabled
        assert tracer.drain_outbox() == []

    def test_collects_finished_spans_once(self):
        tracer = Tracer(trace_seed=7)
        tracer.enable_outbox()
        tracer.begin("q", "query", "q0", 0.0)
        tracer.end("q0", 1.0)
        tracer.complete("b", "batch", "b0", 0.0, 2.0)
        shipped = tracer.drain_outbox()
        assert [s["span_id"] for s in shipped] == ["q0", "b0"]
        assert shipped[0]["trace_id"] == derive_trace_id(7, "q0")
        assert tracer.drain_outbox() == []

    def test_bounded_with_drop_count(self):
        tracer = Tracer()
        tracer.enable_outbox(capacity=2)
        for i in range(5):
            tracer.complete("q", "query", f"q{i}", 0.0, 1.0)
        shipped = tracer.drain_outbox()
        assert [s["span_id"] for s in shipped] == ["q3", "q4"]
        assert tracer.outbox_dropped == 3

    def test_default_capacity(self):
        tracer = Tracer()
        tracer.enable_outbox()
        assert tracer.outbox_capacity == DEFAULT_OUTBOX_CAPACITY


class TestZeroCostOff:
    def test_disabled_telemetry_has_no_tracer(self):
        tel = Telemetry.disabled()
        assert not tel.enabled
        assert tel.tracer is None

    def test_config_validation_still_applies(self):
        from repro.telemetry import TelemetryConfig

        with pytest.raises(ValueError):
            TelemetryConfig(enabled=True, max_spans=0)
