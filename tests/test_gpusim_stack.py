"""Rope-stack storage tests: LIFO semantics and layout-aware traffic."""

import numpy as np
import pytest

from repro.gpusim.device import small_test_device
from repro.gpusim.memory import DeviceAllocator, GlobalMemory
from repro.gpusim.stack import RopeStackLayout, StackOverflowError, StackStorage
from repro.gpusim.stats import KernelStats


@pytest.fixture
def device():
    return small_test_device(warp_size=4)


def make_stack(device, n_stacks=8, layout=RopeStackLayout.INTERLEAVED_GLOBAL,
               lanes=4, channels=None, max_depth=64, account=True):
    stats = KernelStats()
    alloc = DeviceAllocator(device)
    mem = GlobalMemory(device, alloc, stats)
    st = StackStorage(
        n_stacks=n_stacks,
        channels=channels or {"node": (np.int64, 1)},
        layout=layout,
        device=device,
        allocator=None if layout is RopeStackLayout.SHARED else alloc,
        memory=mem,
        stats=stats,
        lanes_per_access=lanes,
        max_depth=max_depth,
        initial_depth=2,
        account=account,
    )
    return st, stats


def all_on(n):
    return np.ones(n, dtype=bool)


class TestLifoSemantics:
    def test_push_pop_roundtrip(self, device):
        st, _ = make_stack(device)
        st.push(all_on(8), 1, node=np.arange(8))
        out = st.pop(all_on(8), 2)
        np.testing.assert_array_equal(out["node"], np.arange(8))
        assert not st.any_nonempty()

    def test_lifo_order(self, device):
        st, _ = make_stack(device)
        st.push(all_on(8), 1, node=np.full(8, 10))
        st.push(all_on(8), 2, node=np.full(8, 20))
        assert st.pop(all_on(8), 3)["node"][0] == 20
        assert st.pop(all_on(8), 4)["node"][0] == 10

    def test_partial_masks(self, device):
        st, _ = make_stack(device)
        mask = np.array([True, False] * 4)
        st.push(mask, 1, node=np.arange(8))
        np.testing.assert_array_equal(st.nonempty(), mask)
        out = st.pop(st.nonempty(), 2)
        np.testing.assert_array_equal(out["node"][mask], np.arange(8)[mask])

    def test_pop_empty_raises(self, device):
        st, _ = make_stack(device)
        with pytest.raises(IndexError, match="empty"):
            st.pop(all_on(8), 1)

    def test_multiple_channels(self, device):
        st, _ = make_stack(
            device,
            channels={"node": (np.int64, 1), "mask": (np.uint64, 1),
                      "arg.dsq": (np.float64, 1)},
        )
        st.push(all_on(8), 1, node=np.arange(8), mask=np.full(8, 7, np.uint64),
                **{"arg.dsq": np.full(8, 2.5)})
        out = st.pop(all_on(8), 2)
        assert out["mask"][3] == 7
        assert out["arg.dsq"][3] == 2.5

    def test_push_requires_all_channels(self, device):
        st, _ = make_stack(
            device, channels={"node": (np.int64, 1), "mask": (np.uint64, 1)}
        )
        with pytest.raises(KeyError, match="push channels"):
            st.push(all_on(8), 1, node=np.arange(8))

    def test_growth_beyond_initial_depth(self, device):
        st, _ = make_stack(device, max_depth=64)
        for d in range(40):
            st.push(all_on(8), d, node=np.full(8, d))
        for d in range(39, -1, -1):
            assert st.pop(all_on(8), 100 + d)["node"][0] == d

    def test_overflow_cap(self, device):
        st, _ = make_stack(device, max_depth=4)
        for d in range(4):
            st.push(all_on(8), d, node=np.full(8, d))
        with pytest.raises(StackOverflowError):
            st.push(all_on(8), 9, node=np.zeros(8, np.int64))

    def test_high_water_tracked(self, device):
        st, _ = make_stack(device)
        for d in range(5):
            st.push(all_on(8), d, node=np.full(8, d))
        st.pop(all_on(8), 9)
        assert st.high_water == 5


class TestTrafficAccounting:
    def test_interleaved_synced_pushes_coalesce(self, device):
        """All stacks at the same depth: adjacent entries are contiguous
        (8 bytes x 4 lanes = 32 bytes -> 1 segment per warp group)."""
        st, stats = make_stack(device, layout=RopeStackLayout.INTERLEAVED_GLOBAL)
        st.push(all_on(8), 1, node=np.arange(8))
        assert stats.stack_ops == 8
        assert stats.global_transactions == 2  # two 4-lane groups

    def test_contiguous_layout_scatters(self, device):
        st, stats = make_stack(device, layout=RopeStackLayout.CONTIGUOUS_GLOBAL)
        st.push(all_on(8), 1, node=np.arange(8))
        # per-stack contiguous: each lane's entry is max_depth*8 apart.
        assert stats.global_transactions == 8

    def test_shared_layout_counts_shared_accesses(self, device):
        st, stats = make_stack(device, layout=RopeStackLayout.SHARED, lanes=1)
        st.push(all_on(8), 1, node=np.arange(8))
        assert stats.global_transactions == 0
        assert stats.shared_accesses == 8
        assert st.shared_bytes_per_group == st.entry_bytes * 1  # depth 1

    def test_shared_bytes_zero_for_global(self, device):
        st, _ = make_stack(device)
        assert st.shared_bytes_per_group == 0

    def test_account_false_is_silent(self, device):
        st, stats = make_stack(device, account=False)
        st.push(all_on(8), 1, node=np.arange(8))
        st.pop(all_on(8), 2)
        assert stats.global_transactions == 0
        assert stats.stack_ops == 0

    def test_desynced_interleaved_scatters(self, device):
        """Stacks at different depths hit different rows -> more
        transactions than the synced case."""
        st, stats = make_stack(device)
        half = np.array([True] * 4 + [False] * 4)
        st.push(half, 1, node=np.arange(8))  # first 4 stacks to depth 1
        base = stats.global_transactions
        st.push(all_on(8), 2, node=np.arange(8))  # depths now differ
        assert stats.global_transactions - base >= 2


class TestConstruction:
    def test_lanes_must_divide(self, device):
        with pytest.raises(ValueError, match="multiple"):
            make_stack(device, n_stacks=6, lanes=4)

    def test_global_layout_needs_allocator(self, device):
        stats = KernelStats()
        with pytest.raises(ValueError, match="allocator"):
            StackStorage(
                n_stacks=4,
                channels={"node": (np.int64, 1)},
                layout=RopeStackLayout.INTERLEAVED_GLOBAL,
                device=device,
                allocator=None,
                memory=None,
                stats=stats,
                lanes_per_access=4,
            )
