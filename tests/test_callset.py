"""Static call-set analysis tests (Section 3.2.1), including the
paper's Fig. 4 (unguided, one call set) and Fig. 5 (guided, two call
sets) examples."""

import numpy as np
import pytest

from repro.core.callset import (
    BranchEvent,
    CallEvent,
    ReturnEvent,
    UpdateEvent,
    analyze_call_sets,
    enumerate_paths,
)
from repro.core.ir import (
    ChildRef,
    CondRef,
    If,
    Recurse,
    Return,
    Seq,
    Update,
    UpdateRef,
    number_call_sites,
)


def fig4_body():
    """Fig. 4: point correlation — one call set (left, right)."""
    return number_call_sites(
        Seq(
            If(CondRef("cant_correlate"), Return()),
            If(
                CondRef("is_leaf", point_dependent=False),
                Seq(Update(UpdateRef("update_correlation")), Return()),
                Seq(Recurse(ChildRef("left")), Recurse(ChildRef("right"))),
            ),
        )
    )


def fig5_body():
    """Fig. 5: nearest neighbor — two call sets in different orders."""
    return number_call_sites(
        Seq(
            If(CondRef("cant_correlate"), Return()),
            If(
                CondRef("is_leaf", point_dependent=False),
                Seq(Update(UpdateRef("update_closest")), Return()),
                If(
                    CondRef("closer_to_left"),
                    Seq(Recurse(ChildRef("left")), Recurse(ChildRef("right"))),
                    Seq(Recurse(ChildRef("right")), Recurse(ChildRef("left"))),
                ),
            ),
        )
    )


class TestPathEnumeration:
    def test_fig4_paths(self):
        paths = enumerate_paths(fig4_body())
        # truncation, leaf-update, and the recursive path
        assert len(paths) == 3
        call_paths = [p for p in paths if any(isinstance(e, CallEvent) for e in p)]
        assert len(call_paths) == 1

    def test_fig5_paths(self):
        paths = enumerate_paths(fig5_body())
        assert len(paths) == 4

    def test_return_terminates_path(self):
        paths = enumerate_paths(Seq(Return(), Update(UpdateRef("dead"))))
        assert paths == [(ReturnEvent(),)]

    def test_events_in_execution_order(self):
        body = Seq(Update(UpdateRef("u")), Recurse(ChildRef("left"), site_id=0))
        (path,) = enumerate_paths(body)
        assert isinstance(path[0], UpdateEvent)
        assert isinstance(path[1], CallEvent)

    def test_branch_events_record_direction(self):
        body = If(CondRef("c"), Return(), Update(UpdateRef("u")))
        paths = enumerate_paths(body)
        takens = {p[0].taken for p in paths}
        assert takens == {True, False}

    def test_path_explosion_guard(self):
        body = Return()
        for _ in range(14):
            body = Seq(If(CondRef("c"), Update(UpdateRef("u"))), body)
        with pytest.raises(ValueError, match="more than"):
            enumerate_paths(body, max_paths=100)


class TestCallSets:
    def test_fig4_single_call_set_unguided(self):
        a = analyze_call_sets(fig4_body())
        assert len(a.call_sets) == 1
        assert a.call_sets[0].sites == (0, 1)
        assert a.single_call_set and a.unguided and not a.guided
        assert a.pseudo_tail_recursive
        assert a.n_truncating_paths == 2

    def test_fig5_two_call_sets_guided(self):
        a = analyze_call_sets(fig5_body())
        assert len(a.call_sets) == 2
        assert a.call_sets[0].sites == (0, 1)
        assert a.call_sets[1].sites == (2, 3)
        names = [tuple(c.name for c in cs.children) for cs in a.call_sets]
        assert names == [("left", "right"), ("right", "left")]
        assert a.guided and not a.unguided
        assert a.pseudo_tail_recursive

    def test_call_set_lookup(self):
        a = analyze_call_sets(fig5_body())
        assert a.call_set_for_sites((0, 1)) == 0
        assert a.call_set_for_sites((2, 3)) == 1
        assert a.call_set_for_sites((9,)) is None

    def test_point_dependent_child_makes_guided(self):
        body = number_call_sites(Recurse(ChildRef("next", point_dependent=True)))
        a = analyze_call_sets(body)
        assert a.single_call_set and not a.unguided

    def test_octree_eight_calls_one_set(self):
        body = number_call_sites(
            If(
                CondRef("far"),
                Update(UpdateRef("u")),
                Seq(*[Recurse(ChildRef(f"c{i}")) for i in range(8)]),
            )
        )
        a = analyze_call_sets(body)
        assert len(a.call_sets) == 1
        assert len(a.call_sets[0]) == 8
        assert a.unguided


class TestPseudoTailDetection:
    def test_update_after_call_not_pseudo_tail(self):
        body = number_call_sites(
            Seq(Recurse(ChildRef("left")), Update(UpdateRef("u")))
        )
        assert not analyze_call_sets(body).pseudo_tail_recursive

    def test_update_between_calls_not_pseudo_tail(self):
        body = number_call_sites(
            Seq(
                Recurse(ChildRef("left")),
                Update(UpdateRef("u")),
                Recurse(ChildRef("right")),
            )
        )
        assert not analyze_call_sets(body).pseudo_tail_recursive

    def test_trailing_return_is_allowed(self):
        body = number_call_sites(
            Seq(Recurse(ChildRef("left")), Recurse(ChildRef("right")), Return())
        )
        assert analyze_call_sets(body).pseudo_tail_recursive

    def test_branch_after_call_not_pseudo_tail(self):
        body = number_call_sites(
            Seq(
                Recurse(ChildRef("left")),
                If(CondRef("c"), Recurse(ChildRef("right"))),
            )
        )
        assert not analyze_call_sets(body).pseudo_tail_recursive

    def test_no_calls_at_all(self):
        a = analyze_call_sets(Seq(Update(UpdateRef("u")), Return()))
        assert a.call_sets == ()
        assert a.pseudo_tail_recursive  # vacuously
        assert a.unguided is False  # no call set -> not single_call_set
