"""CPU baseline tests: cache model, thread scaling, scalar interpreter."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cpusim.cache import CacheConfig, classify_reuse, reuse_gaps
from repro.cpusim.threads import CPUConfig, OPTERON_6176, cpu_time_ms


def brute_force_gaps(stream):
    last = {}
    gaps = []
    for i, v in enumerate(stream):
        gaps.append(i - last[v] if v in last else np.iinfo(np.int64).max)
        last[v] = i
    return np.array(gaps, dtype=np.int64)


class TestReuseGaps:
    def test_simple_stream(self):
        stream = np.array([1, 2, 1, 1, 3, 2])
        np.testing.assert_array_equal(reuse_gaps(stream), brute_force_gaps(stream))

    def test_all_distinct(self):
        gaps = reuse_gaps(np.arange(10))
        assert (gaps == np.iinfo(np.int64).max).all()

    def test_all_same(self):
        gaps = reuse_gaps(np.zeros(5, dtype=np.int64))
        assert gaps[0] == np.iinfo(np.int64).max
        assert (gaps[1:] == 1).all()

    def test_empty(self):
        assert len(reuse_gaps(np.empty(0, dtype=np.int64))) == 0

    @given(
        st.lists(st.integers(0, 20), min_size=1, max_size=200).map(np.array)
    )
    @settings(max_examples=60, deadline=None)
    def test_matches_brute_force(self, stream):
        np.testing.assert_array_equal(reuse_gaps(stream), brute_force_gaps(stream))


class TestClassifyReuse:
    def setup_method(self):
        self.cfg = CacheConfig(
            l1_window=4, l2_window=16, l3_window=64,
            l1_cycles=1, l2_cycles=10, l3_cycles=40, dram_cycles=200,
        )

    def test_levels_partition_accesses(self):
        stream = np.random.default_rng(0).integers(0, 50, size=500)
        hits = classify_reuse(stream, self.cfg)
        assert hits["l1"] + hits["l2"] + hits["l3"] + hits["dram"] == 500

    def test_tight_loop_hits_l1(self):
        stream = np.tile(np.arange(3), 50)
        hits = classify_reuse(stream, self.cfg)
        assert hits["dram"] == 3  # only compulsory misses
        assert hits["l1"] == 147

    def test_huge_strides_miss(self):
        stream = np.arange(100)
        hits = classify_reuse(stream, self.cfg)
        assert hits["dram"] == 100

    def test_cycles_monotone_in_misses(self):
        good = classify_reuse(np.tile(np.arange(2), 50), self.cfg)
        bad = classify_reuse(np.arange(100), self.cfg)
        assert bad["cycles"] > good["cycles"]

    def test_config_validation(self):
        with pytest.raises(ValueError, match="increasing"):
            CacheConfig(l1_window=10, l2_window=10, l3_window=20).validate()


class TestCpuTime:
    def _seqs(self, n_points=64, length=50, shared=True, seed=0):
        rng = np.random.default_rng(seed)
        if shared:
            base = rng.integers(0, 30, size=length)
            return [base.copy() for _ in range(n_points)]
        return [
            rng.integers(p * 1000, p * 1000 + 500, size=length)
            for p in range(n_points)
        ]

    def test_more_threads_not_slower(self):
        seqs = self._seqs()
        t1 = cpu_time_ms(seqs, 1).time_ms
        t8 = cpu_time_ms(seqs, 8).time_ms
        t32 = cpu_time_ms(seqs, 32).time_ms
        assert t8 <= t1 and t32 <= t8

    def test_compute_bound_scales_nearly_linearly(self):
        # big enough that the fork-join constant does not dominate
        seqs = self._seqs(n_points=128, length=800, shared=True)
        t1 = cpu_time_ms(seqs, 1)
        t8 = cpu_time_ms(seqs, 8)
        speedup = t1.time_ms / t8.time_ms
        assert speedup > 4  # decent scaling before saturation

    def test_locality_matters(self):
        """Shared (sorted-like) streams run faster than scattered ones."""
        fast = cpu_time_ms(self._seqs(shared=True), 1).time_ms
        slow = cpu_time_ms(self._seqs(shared=False), 1).time_ms
        assert slow > fast

    def test_visit_cost_scale(self):
        seqs = self._seqs()
        base = cpu_time_ms(seqs, 1, visit_cost_scale=1.0)
        heavy = cpu_time_ms(seqs, 1, visit_cost_scale=3.0)
        assert heavy.time_ms > base.time_ms

    def test_total_visits_counted(self):
        seqs = [np.arange(5), np.arange(7)]
        assert cpu_time_ms(seqs, 2).total_visits == 12

    def test_threads_clamped_to_points(self):
        seqs = [np.arange(5)]
        t = cpu_time_ms(seqs, 16)
        assert t.threads == 1

    def test_imbalance_penalizes(self):
        """One giant traversal among tiny ones bounds the parallel time."""
        seqs = [np.arange(5)] * 31 + [np.arange(50000)]
        t32 = cpu_time_ms(seqs, 32)
        t1 = cpu_time_ms(seqs, 1)
        # the long chunk dominates: scaling far from linear
        assert t1.time_ms / t32.time_ms < 4

    def test_bad_threads(self):
        with pytest.raises(ValueError):
            cpu_time_ms([np.arange(3)], 0)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            CPUConfig(n_cores=0).validate()
        assert OPTERON_6176.n_cores == 48
