"""Property-based tests: randomized trees and truncation predicates.

These are the strongest correctness checks in the suite: for arbitrary
binary trees and arbitrary (hash-derived, deterministic) per-(point,
node) truncation and call-order decisions,

* the autoropes executor visits exactly the nodes, in exactly the
  order, of true recursion (Section 3.3's correctness claim);
* the lockstep executor performs exactly the same per-point *updates*
  (set semantics), with masks, votes and phantom carrying handled;
* the recursive-baseline executors also produce identical updates.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.base import QuerySet
from repro.core.annotations import Annotation
from repro.core.ir import (
    ChildRef,
    CondRef,
    EvalContext,
    If,
    Recurse,
    Return,
    Seq,
    TraversalSpec,
    Update,
    UpdateRef,
)
from repro.core.pipeline import TransformPipeline
from repro.cpusim.recursive import RecursiveInterpreter
from repro.gpusim.device import small_test_device
from repro.gpusim.executors import (
    AutoropesExecutor,
    LockstepExecutor,
    RecursiveExecutor,
    TraversalLaunch,
)

DEVICE = small_test_device(warp_size=4)
PIPELINE = TransformPipeline()


def random_tree(rng: np.random.Generator, n: int):
    """A random binary tree over nodes 0..n-1 in valid (parent<child)
    shape, then linearized."""
    from repro.trees.node import FieldGroup, RawTree
    from repro.trees.linearize import linearize_left_biased

    left = np.full(n, -1, dtype=np.int64)
    right = np.full(n, -1, dtype=np.int64)
    for child in range(1, n):
        parent = int(rng.integers(0, child))
        # attach to the first free slot of a random walk over parents
        for _ in range(n):
            if left[parent] < 0:
                left[parent] = child
                break
            if right[parent] < 0:
                right[parent] = child
                break
            parent = int(left[parent] if rng.random() < 0.5 else right[parent])
        else:  # pragma: no cover - random walk always finds a slot
            raise AssertionError("no slot found")
    raw = RawTree(
        child_names=("left", "right"),
        children={"left": left, "right": right},
        arrays={"salt": rng.integers(0, 1 << 30, size=n)},
        groups=(FieldGroup("hot", 8), FieldGroup("cold", 8)),
    )
    return linearize_left_biased(raw)


def _hash01(a: np.ndarray, b: np.ndarray, salt: int) -> np.ndarray:
    """Deterministic pseudo-random bit per (a, b) pair."""
    x = (a.astype(np.int64) * 2654435761 + b.astype(np.int64) * 40503 + salt)
    x = (x ^ (x >> 13)) * 1274126177
    return ((x >> 7) & 3) == 0  # ~25% true


def make_spec(truncate_salt: int, guided: bool):
    def truncate(ctx, node, pt, args):
        return _hash01(node, ctx.points.orig_ids[pt], truncate_salt)

    def closer(ctx, node, pt, args):
        return _hash01(node, ctx.points.orig_ids[pt], truncate_salt + 7)

    def count(ctx, node, pt, args):
        np.add.at(ctx.out["mass"], pt, (node + 1).astype(np.float64))
        np.add.at(ctx.out["visits"], pt, 1)

    update = Update(UpdateRef("count", reads=("hot",)))
    if guided:
        body = Seq(
            If(CondRef("truncate", reads=("hot",)), Return()),
            update,
            If(
                CondRef("closer"),
                Seq(Recurse(ChildRef("left")), Recurse(ChildRef("right"))),
                Seq(Recurse(ChildRef("right")), Recurse(ChildRef("left"))),
            ),
        )
        ann = frozenset({Annotation.CALLSETS_EQUIVALENT})
    else:
        body = Seq(
            If(CondRef("truncate", reads=("hot",)), Return()),
            update,
            Recurse(ChildRef("left")),
            Recurse(ChildRef("right")),
        )
        ann = frozenset()
    return TraversalSpec(
        name="random_traversal",
        body=body,
        conditions={"truncate": truncate, "closer": closer},
        updates={"count": count},
        annotations=ann,
    )


def make_ctx(tree, n_pts):
    return EvalContext(
        tree=tree,
        points=QuerySet(coords=np.zeros((n_pts, 1)), orig_ids=np.arange(n_pts)),
        out={"mass": np.zeros(n_pts), "visits": np.zeros(n_pts, dtype=np.int64)},
    )


@given(
    tree_seed=st.integers(0, 10_000),
    salt=st.integers(0, 10_000),
    n_nodes=st.integers(1, 60),
    n_pts=st.integers(1, 20),
)
@settings(max_examples=25, deadline=None)
def test_autoropes_visit_order_equals_recursion(tree_seed, salt, n_nodes, n_pts):
    rng = np.random.default_rng(tree_seed)
    tree = random_tree(rng, n_nodes)
    spec = make_spec(salt, guided=False)
    compiled = PIPELINE.compile(spec)

    ctx = make_ctx(tree, n_pts)
    launch = TraversalLaunch(
        kernel=compiled.autoropes, tree=tree, ctx=ctx, n_points=n_pts,
        device=DEVICE, record_visits=True,
    )
    seqs = AutoropesExecutor(launch).run().per_point_sequences()

    ref_ctx = make_ctx(tree, n_pts)
    interp = RecursiveInterpreter(spec, tree, ref_ctx)
    for p in range(n_pts):
        np.testing.assert_array_equal(interp.run_point(p), seqs[p])
    np.testing.assert_allclose(ctx.out["mass"], ref_ctx.out["mass"])
    np.testing.assert_array_equal(ctx.out["visits"], ref_ctx.out["visits"])


@given(
    tree_seed=st.integers(0, 10_000),
    salt=st.integers(0, 10_000),
    n_nodes=st.integers(1, 60),
    n_pts=st.integers(1, 20),
    guided=st.booleans(),
)
@settings(max_examples=25, deadline=None)
def test_all_executors_agree_on_updates(tree_seed, salt, n_nodes, n_pts, guided):
    """Update *sets* are identical across every executor variant.

    For the unguided spec updates depend only on (point, node), and for
    the guided spec the truncation predicate is order-independent too,
    so even the vote-reordered lockstep run must hit the same set."""
    rng = np.random.default_rng(tree_seed)
    tree = random_tree(rng, n_nodes)
    spec = make_spec(salt, guided=guided)
    compiled = PIPELINE.compile(spec)

    ref_ctx = make_ctx(tree, n_pts)
    interp = RecursiveInterpreter(spec, tree, ref_ctx)
    for p in range(n_pts):
        interp.run_point(p)

    runs = [
        (compiled.autoropes, AutoropesExecutor, {}),
        (compiled.lockstep, LockstepExecutor, {}),
        (compiled.lockstep, lambda L: RecursiveExecutor(L, masking=True), {}),
        (compiled.autoropes, lambda L: RecursiveExecutor(L, masking=False), {}),
    ]
    for kernel, exe, kw in runs:
        ctx = make_ctx(tree, n_pts)
        launch = TraversalLaunch(
            kernel=kernel, tree=tree, ctx=ctx, n_points=n_pts, device=DEVICE, **kw
        )
        exe(launch).run()
        np.testing.assert_allclose(ctx.out["mass"], ref_ctx.out["mass"])
        np.testing.assert_array_equal(ctx.out["visits"], ref_ctx.out["visits"])


@given(
    tree_seed=st.integers(0, 5_000),
    salt=st.integers(0, 5_000),
    n_nodes=st.integers(2, 40),
    n_pts=st.integers(2, 16),
)
@settings(max_examples=20, deadline=None)
def test_inorder_normalization_property(tree_seed, salt, n_nodes, n_pts):
    """Random in-order traversals (update sandwiched between calls)
    survive normalization + autoropes with identical update multisets
    AND per-point order."""
    rng = np.random.default_rng(tree_seed)
    tree = random_tree(rng, n_nodes)

    def truncate(ctx, node, pt, args):
        return _hash01(node, ctx.points.orig_ids[pt], salt)

    log = []

    def record(ctx, node, pt, args):
        for n, p in zip(node, pt):
            log.append((int(p), int(n)))

    spec = TraversalSpec(
        name="inorder",
        body=Seq(
            If(CondRef("truncate"), Return()),
            Recurse(ChildRef("left")),
            Update(UpdateRef("rec")),
            Recurse(ChildRef("right")),
        ),
        conditions={"truncate": truncate},
        updates={"rec": record},
    )
    compiled = PIPELINE.compile(spec)
    assert compiled.normalized.visits_null_children

    ctx = make_ctx(tree, n_pts)
    interp = RecursiveInterpreter(spec, tree, ctx)
    for p in range(n_pts):
        interp.run_point(p)
    ref_log, log[:] = list(log), []

    ctx2 = make_ctx(tree, n_pts)
    launch = TraversalLaunch(
        kernel=compiled.autoropes, tree=tree, ctx=ctx2, n_points=n_pts,
        device=DEVICE,
    )
    AutoropesExecutor(launch).run()
    gpu_log = list(log)

    def per_point(entries):
        out = {}
        for p, n in entries:
            out.setdefault(p, []).append(n)
        return out

    assert per_point(ref_log) == per_point(gpu_log)
