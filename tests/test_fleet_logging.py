"""Fleet-wide structured logging: shipment, correlation, diagnostics.

The e2e acceptance criteria of ISSUE 10 live here:

* a scatter/gather ticket under chaos yields ``/logz?trace_id=...``
  records, ``/tracez`` spans, and a ``/metrics`` exemplar that all
  carry the SAME router-minted trace id — the telemetry triad joined;
* worker records ship over the same reply pipes as spans (piggyback +
  ``log_drain`` sweeps) and merge with the router's own records into
  one deterministically-ordered stream: two same-seed runs (chaos kill
  included) produce bit-identical streams;
* a ServiceError on a fleet worker leaves a flight-recorder dump
  reachable router-side (the ``flight`` verb), including at
  ``flight_capacity=1``;
* ``/logz`` / ``/tracez`` / ``/statsz`` answer 400 + JSON error bodies
  on malformed query params, never 500;
* ``/debugz`` is one strict-JSON diagnostics snapshot with recent
  error records;
* logging off is zero-cost: no ``logs`` payloads on the wire and
  ``/logz`` answers ``enabled: false``.
"""

import json

from repro.fleet.logs import FleetLogAssembler
from repro.fleet.router import FleetServer
from repro.telemetry import OTLPExporter, derive_trace_id
from repro.telemetry.otlp import otlp_trace_id
from tests.otlp_stub import OTLPCollectorStub, flatten_log_records
from tests.test_fleet_tracing import _fleet, _register_geo
from tests.test_serve import assert_valid_prometheus

#: service payload whose chaos injector makes workers log retries and
#: fault draws during a scattered submit (failover still recovers, so
#: every row answers ok while warn-level records accumulate).
CHAOS_SERVICE = {
    "max_batch": 64,
    "max_wait_ms": 2.0,
    "chaos": {"seed": 5, "p_backend_error": 0.6,
              "targets": ["lockstep", "nonlockstep"]},
}


def _normalize_logs(records) -> list:
    """A log stream reduced to its seed-determined identity."""
    return [
        json.dumps(r, sort_keys=True)
        for r in records
    ]


class TestAssembler:
    def test_ingest_tags_bounds_and_sorts(self):
        asm = FleetLogAssembler(capacity=3)
        asm.ingest("w1", [
            {"seq": 0, "t_ms": 2.0, "level": "info", "event": "b"},
        ])
        asm.ingest("w0", [
            {"seq": 0, "t_ms": 2.0, "level": "warn", "event": "a"},
            {"seq": 1, "t_ms": 1.0, "level": "error", "event": "c"},
        ])
        asm.ingest("router", [
            {"seq": 9, "t_ms": 3.0, "level": "debug", "event": "d"},
        ])
        assert asm.ingested == 4
        assert asm.dropped == 1  # capacity 3: oldest evicted
        recs = asm.records()
        # deterministic (t_ms, worker, seq) order, worker tag attached
        assert [(r["t_ms"], r["worker"]) for r in recs] == [
            (1.0, "w0"), (2.0, "w0"), (3.0, "router"),
        ]
        assert asm.workers() == ["router", "w0"]
        assert [r["event"] for r in asm.records(level="warn")] == ["c", "a"]
        assert asm.to_dict(limit=1)["records"][0]["event"] == "d"

    def test_sink_failures_never_break_assembly(self):
        asm = FleetLogAssembler()
        asm.sink = lambda batch: 1 / 0
        assert asm.ingest("w0", [{"seq": 0, "t_ms": 0.0, "level": "info",
                                  "event": "x"}]) == 1
        assert asm.ingested == 1


class TestTriadCorrelation:
    def test_ticket_logs_spans_and_exemplar_share_one_trace_id(self):
        """Acceptance: /logz?trace_id=..., /tracez, and a /metrics
        exemplar all yield the same ticket trace id under chaos."""
        router = _fleet(workers=2, service=dict(CHAOS_SERVICE))
        try:
            geo = _register_geo(router)
            res = router.submit_many("pc-geocity", geo.points[:16], now=5.0)
            assert len(res) == 16 and all(r["ok"] for r in res)
            tid = derive_trace_id(router.config.seed, "ticket:0")

            # Pillar 1: the merged log stream, filtered to the ticket.
            payload = router.logz(trace_id=tid)
            assert payload["enabled"] is True
            recs = payload["records"]
            assert recs, "chaos produced no trace-scoped log records"
            assert all(r["trace_id"] == tid for r in recs)
            # ... and at least one record came from a worker process
            # (shipped over the wire, not minted in the router).
            assert {r["worker"] for r in recs} & {"w0", "w1"}
            assert {r["event"] for r in recs} <= {
                "chaos.fault", "retry", "breaker.transition",
                "plan.invalidated", "plan.failure_threshold",
                "batch.failed", "fleet.scatter_retry",
            }

            # Pillar 2: the merged timeline holds the ticket span.
            spans = [s for s in router.tracez()["spans"]
                     if s["trace_id"] == tid]
            assert any(s["name"] == "fleet.ticket" for s in spans)

            # Pillar 3: the merged scrape carries the id as an exemplar.
            text = router.metrics_text()
            assert_valid_prometheus(text)
            assert f'trace_id="{tid}"' in text
        finally:
            router.drain()

    def test_worker_death_retry_and_drain_verdicts_logged(self):
        router = _fleet(workers=2, seed=123)
        try:
            geo = _register_geo(router)
            victim = router.handles["w1"]
            victim.proc.kill()
            victim.proc.join()
            res = router.submit_many("pc-geocity", geo.points[:16], now=5.0)
            assert all(r["ok"] for r in res)
            tid = derive_trace_id(router.config.seed, "ticket:0")

            payload = router.logz()
            events = {r["event"]: r for r in payload["records"]}
            death = events["fleet.worker_death"]
            assert death["level"] == "error"
            assert death["worker"] == "router"
            assert death["fields"]["worker"] == "w1"
            retry = events["fleet.scatter_retry"]
            assert retry["level"] == "warn"
            assert retry["trace_id"] == tid  # correlated to the ticket
            assert retry["fields"]["rows"] == 8
        finally:
            report = router.drain()
        assert report["workers"]["w0"]["drained"]  # w1 died mid-test
        # Post-drain the stream holds each worker's own drain verdict
        # (the record rides the drain reply itself) and the router's.
        recs = router.logs.records()
        worker_verdicts = [r for r in recs if r["event"] == "worker.drain"]
        assert {r["worker"] for r in worker_verdicts} == {"w0"}
        assert all(r["fields"]["drained"] for r in worker_verdicts)
        router_verdicts = [r for r in recs
                           if r["event"] == "fleet.drain_verdict"]
        assert router_verdicts
        assert all(r["worker"] == "router" for r in router_verdicts)

    def test_same_seed_runs_produce_bit_identical_streams(self):
        """Acceptance: the merged stream is a pure function of the
        fleet seed — even with a chaos kill mid-scatter."""
        def run(seed):
            router = _fleet(workers=2, seed=seed,
                            service=dict(CHAOS_SERVICE))
            try:
                geo = _register_geo(router)
                victim = router.handles["w1"]
                victim.proc.kill()
                victim.proc.join()
                router.submit_many("pc-geocity", geo.points[:16], now=5.0)
                return _normalize_logs(router.logz()["records"])
            finally:
                router.drain()

        a, b = run(123), run(123)
        assert a, "chaos run produced no log records"
        assert a == b


class TestFlightDumps:
    """Satellite: a worker-side failure is recoverable router-side."""

    def test_worker_fault_dump_reachable_via_flight_verb(self):
        router = _fleet(workers=2, service={
            **CHAOS_SERVICE,
            "telemetry": {"enabled": True, "flight_capacity": 1},
        })
        try:
            geo = _register_geo(router)
            res = router.submit_many("pc-geocity", geo.points[:16], now=5.0)
            assert all(r["ok"] for r in res)
            dumps = router.flight_dumps()
            assert dumps["unreachable"] == []
            assert "router" in dumps
            flights = {w: f for w, f in dumps["workers"].items()
                       if f is not None}
            assert flights, "no worker answered the flight verb"
            # flight_capacity=1 still captures the chaos fault dumps.
            assert any(f["dumps"] for f in flights.values())
            some = next(f for f in flights.values() if f["dumps"])
            assert some["capacity"] == 1
            kinds = {d["reason"] for f in flights.values()
                     for d in f["dumps"]}
            assert any(k.startswith("chaos:") for k in kinds)
            json.dumps(dumps)  # JSON-safe end to end
        finally:
            router.drain()

    def test_telemetry_off_workers_answer_none(self):
        router = _fleet(workers=2, service={
            "max_batch": 64, "max_wait_ms": 2.0,
            "telemetry": {"enabled": False},
        })
        try:
            _register_geo(router)
            dumps = router.flight_dumps()
            assert set(dumps["workers"]) == {"w0", "w1"}
            assert all(f is None for f in dumps["workers"].values())
        finally:
            router.drain()


class TestHTTPSurface:
    def test_logz_filters_over_http(self):
        router = _fleet(workers=2, service=dict(CHAOS_SERVICE))
        server = FleetServer(router)
        try:
            geo = _register_geo(router)
            router.submit_many("pc-geocity", geo.points[:16], now=5.0)

            status, ctype, body = server.respond("/logz")
            assert status == 200 and "json" in ctype
            payload = json.loads(body)
            assert payload["enabled"] is True
            assert payload["records"]
            assert set(payload["workers"]) <= {"router", "w0", "w1"}

            some_worker = payload["records"][0]["worker"]
            scoped = json.loads(
                server.respond(f"/logz?worker={some_worker}")[2]
            )
            assert scoped["records"]
            assert all(r["worker"] == some_worker
                       for r in scoped["records"])

            floor = json.loads(server.respond("/logz?level=warn&limit=3")[2])
            assert len(floor["records"]) <= 3
            assert all(r["level"] in ("warn", "error")
                       for r in floor["records"])

            tid = derive_trace_id(router.config.seed, "ticket:0")
            one = json.loads(server.respond(f"/logz?trace_id={tid}")[2])
            assert all(r["trace_id"] == tid for r in one["records"])
        finally:
            router.drain()

    def test_malformed_params_are_400_json_everywhere(self):
        """Satellite: bad query params are a client error with a JSON
        body on every diagnostics route — never a 500."""
        router = _fleet(workers=2)
        server = FleetServer(router)
        try:
            _register_geo(router)
            for path in (
                "/logz?limit=abc", "/logz?limit=-1", "/logz?level=bogus",
                "/tracez?limit=abc", "/tracez?limit=-1",
                "/statsz?limit=abc", "/statsz?limit=-2",
            ):
                status, ctype, body = server.respond(path)
                assert status == 400, path
                assert "json" in ctype, path
                assert "error" in json.loads(body), path
            # 404 advertises the full diagnostics plane.
            routes = json.loads(server.respond("/nope")[2])["routes"]
            assert "/logz" in routes and "/debugz" in routes
        finally:
            router.drain()

    def test_debugz_snapshot(self):
        router = _fleet(workers=2, seed=123)
        server = FleetServer(router)
        try:
            geo = _register_geo(router)
            victim = router.handles["w1"]
            victim.proc.kill()
            victim.proc.join()
            router.submit_many("pc-geocity", geo.points[:16], now=5.0)

            status, _, body = server.respond("/debugz")
            assert status == 200
            payload = json.loads(
                body.decode(), parse_constant=_reject_constants
            )
            for key in ("config", "now_ms", "workers", "ring", "sessions",
                        "supervision", "telemetry", "recent_errors"):
                assert key in payload, key
            assert payload["config"]["workers"] == 2
            assert payload["workers"]["w1"]["breaker"] == "open"
            assert payload["ring"]["live"] == ["w0"]
            assert "w1" in payload["ring"]["dead"]
            assert payload["telemetry"]["trace"]["ingested"] > 0
            assert payload["telemetry"]["logs"]["ingested"] > 0
            errors = payload["recent_errors"]
            assert any(r["event"] == "fleet.worker_death" for r in errors)
        finally:
            router.drain()

    def test_statsz_and_metrics_carry_log_accounting(self):
        router = _fleet(workers=2, service=dict(CHAOS_SERVICE))
        try:
            geo = _register_geo(router)
            router.submit_many("pc-geocity", geo.points[:16], now=5.0)
            router.drain_logs()
            stats = router.statsz()["fleet"]["logs"]
            assert stats["ingested"] > 0
            assert stats["retained"] > 0
            text = router.metrics_text()
            assert_valid_prometheus(text)
            assert "fleet_log_records_ingested_total" in text
        finally:
            router.drain()


class TestZeroCostOff:
    def test_log_off_fleet(self):
        router = _fleet(workers=2, log=False)
        server = FleetServer(router)
        try:
            geo = _register_geo(router)
            res = router.submit_many("pc-geocity", geo.points[:16], now=5.0)
            assert all(r["ok"] for r in res)
            assert router.logs is None and router.log is None
            assert router.logz() == {
                "enabled": False, "records": [], "workers": [],
            }
            assert router.drain_logs() == 0
            status, _, body = server.respond("/logz")
            assert status == 200
            assert json.loads(body)["enabled"] is False
            assert router.statsz()["fleet"]["logs"] is None
            text = router.metrics_text()
            assert_valid_prometheus(text)
            assert "fleet_log_records_ingested_total" not in text
        finally:
            router.drain()

    def test_worker_telemetry_off_ships_no_logs(self):
        """Workers with telemetry disabled never attach a logs payload;
        the router still records its own stream."""
        router = _fleet(workers=2, service={
            "max_batch": 64, "max_wait_ms": 2.0,
            "telemetry": {"enabled": False},
        })
        try:
            geo = _register_geo(router)
            router.submit_many("pc-geocity", geo.points[:16], now=5.0)
            assert router.drain_logs() == 0
            payload = router.logz()
            workers = {r["worker"] for r in payload["records"]}
            assert workers <= {"router"}
        finally:
            router.drain()


class TestOTLPLogEgress:
    def test_fleet_logs_reach_collector_with_worker_and_trace(self):
        """Acceptance: the collector stub receives spans, metrics, AND
        logs; exported records keep their worker tag and trace id."""
        with OTLPCollectorStub() as stub:
            router = _fleet(workers=2, service=dict(CHAOS_SERVICE))
            try:
                exporter = OTLPExporter(
                    stub.endpoint, flush_ms=10_000.0,
                    service_name="repro-fleet",
                )
                router.attach_otlp(exporter)
                geo = _register_geo(router)
                router.submit_many("pc-geocity", geo.points[:16], now=5.0)
                router.drain_spans()
                router.drain_logs()
                exporter.flush()
                stats = exporter.stats()
                assert stats["posts_by_signal"]["traces"] >= 1
                assert stats["posts_by_signal"]["logs"] >= 1
                assert stats["posts_by_signal"]["metrics"] >= 1
                assert stats["logs_dropped"] == 0
                tid = derive_trace_id(router.config.seed, "ticket:0")
            finally:
                router.drain()
        records = stub.log_records()
        assert records, "no log records reached the collector"
        attrs = [
            {kv["key"]: kv["value"] for kv in r.get("attributes", [])}
            for r in records
        ]
        workers = {a["worker"]["stringValue"] for a in attrs if "worker" in a}
        assert workers & {"w0", "w1", "router"}
        assert any(r.get("traceId") == otlp_trace_id(tid) for r in records)
        # ... and the metrics payloads parse as fleet series.
        metrics = stub.metrics()
        names = {m["name"] for m in metrics}
        assert any(n.startswith("fleet_") for n in names)


def _reject_constants(name):
    raise ValueError(f"non-strict JSON constant {name!r}")
