"""Dataset generator and point-sorting tests."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.points.datasets import (
    DATASET_NAMES,
    covtype_like,
    dataset_by_name,
    geocity_like,
    mnist_like,
    plummer_bodies,
    random_bodies,
    random_points,
)
from repro.points.sorting import (
    morton_codes,
    morton_order,
    shuffled_order,
    tree_order,
)


class TestGenerators:
    @pytest.mark.parametrize("name", DATASET_NAMES)
    def test_shapes_and_determinism(self, name):
        a = dataset_by_name(name, 128)
        b = dataset_by_name(name, 128)
        assert a.n == 128
        np.testing.assert_array_equal(a.points, b.points)
        assert np.isfinite(a.points).all()

    def test_dimensions(self):
        assert covtype_like(64).dim == 7
        assert mnist_like(64).dim == 7
        assert random_points(64).dim == 7
        assert geocity_like(64).dim == 2

    def test_seed_changes_data(self):
        a = random_points(64, seed=1).points
        b = random_points(64, seed=2).points
        assert not np.array_equal(a, b)

    def test_unknown_name_rejected(self):
        with pytest.raises(KeyError, match="unknown dataset"):
            dataset_by_name("nope", 10)

    def test_bad_sizes_rejected(self):
        for fn in (covtype_like, mnist_like, random_points, geocity_like):
            with pytest.raises(ValueError):
                fn(0)
        with pytest.raises(ValueError):
            plummer_bodies(0)

    def test_geocity_is_clustered(self):
        """Clustered data has far smaller mean nearest-neighbor distance
        than uniform data of the same size."""
        geo = geocity_like(400, seed=3).points
        uni = np.random.default_rng(3).uniform(0, 1, size=(400, 2))

        def mean_nn(pts):
            d = np.linalg.norm(pts[:, None] - pts[None, :], axis=2)
            np.fill_diagonal(d, np.inf)
            return d.min(axis=1).mean()

        assert mean_nn(geo) < mean_nn(uni) / 3

    def test_projected_datasets_normalized_to_unit_cube(self):
        for ds in (covtype_like(256), mnist_like(256)):
            assert ds.points.min() >= -1e-12
            assert ds.points.max() <= 1 + 1e-12


class TestPlummer:
    def test_equal_masses_sum_to_one(self):
        b = plummer_bodies(500, seed=1)
        assert b.mass.sum() == pytest.approx(1.0)
        assert (b.mass == b.mass[0]).all()

    def test_radial_profile(self):
        """Half-mass radius of the Plummer model is ~1.3 a."""
        b = plummer_bodies(20000, seed=2)
        r = np.linalg.norm(b.pos, axis=1)
        half_mass_radius = np.median(r)
        assert 1.0 < half_mass_radius < 1.7

    def test_velocities_bounded_by_escape(self):
        b = plummer_bodies(2000, seed=3)
        r = np.linalg.norm(b.pos, axis=1)
        v = np.linalg.norm(b.vel, axis=1)
        v_esc = np.sqrt(2.0) * (1.0 + r * r) ** -0.25
        assert (v <= v_esc + 1e-9).all()

    def test_random_bodies(self):
        b = random_bodies(100, seed=4)
        assert b.pos.shape == (100, 3) and b.vel.shape == (100, 3)


class TestMorton:
    def test_codes_deterministic_and_bounded(self):
        pts = np.random.default_rng(0).uniform(0, 1, size=(100, 3))
        codes = morton_codes(pts)
        assert (codes >= 0).all()
        np.testing.assert_array_equal(codes, morton_codes(pts))

    def test_order_is_permutation(self):
        pts = np.random.default_rng(1).uniform(0, 1, size=(100, 7))
        order = morton_order(pts)
        assert sorted(order.tolist()) == list(range(100))

    def test_1d_morton_is_plain_sort(self):
        pts = np.random.default_rng(2).uniform(0, 1, size=(50, 1))
        order = morton_order(pts)
        assert (np.diff(pts[order, 0]) >= 0).all()

    def test_sorting_improves_neighbor_distance(self):
        """Consecutive Morton-sorted points are spatially closer, on
        average, than consecutive shuffled points."""
        pts = np.random.default_rng(3).uniform(0, 1, size=(512, 3))
        sorted_pts = pts[morton_order(pts)]
        shuffled_pts = pts[shuffled_order(512, 4)]

        def step(p):
            return np.linalg.norm(np.diff(p, axis=0), axis=1).mean()

        assert step(sorted_pts) < step(shuffled_pts) / 2

    def test_bits_overflow_guard(self):
        pts = np.zeros((4, 8))
        with pytest.raises(ValueError, match="63 bits"):
            morton_codes(pts, bits_per_dim=8)

    def test_degenerate_axis_ok(self):
        pts = np.zeros((10, 3))
        pts[:, 0] = np.arange(10)
        codes = morton_codes(pts)
        assert len(np.unique(codes)) == 10

    @given(seed=st.integers(0, 100), n=st.integers(2, 64), d=st.integers(1, 7))
    @settings(max_examples=25, deadline=None)
    def test_order_permutation_property(self, seed, n, d):
        pts = np.random.default_rng(seed).uniform(-5, 5, size=(n, d))
        order = morton_order(pts)
        assert sorted(order.tolist()) == list(range(n))


class TestOrders:
    def test_shuffled_is_seeded_permutation(self):
        a = shuffled_order(50, seed=1)
        b = shuffled_order(50, seed=1)
        np.testing.assert_array_equal(a, b)
        assert sorted(a.tolist()) == list(range(50))

    def test_tree_order_checks_permutation(self):
        assert tree_order(np.array([2, 0, 1])).tolist() == [2, 0, 1]
        with pytest.raises(ValueError, match="permutation"):
            tree_order(np.array([0, 0, 1]))

    def test_shuffled_rejects_empty(self):
        with pytest.raises(ValueError):
            shuffled_order(0)
