"""Autoropes transformation tests (Section 3.2.2, Figures 6/7)."""

import numpy as np
import pytest

from repro.core.autoropes import (
    Continue,
    PushGroup,
    apply_autoropes,
)
from repro.core.ir import (
    ArgDecl,
    ChildRef,
    CondRef,
    If,
    Recurse,
    Return,
    Seq,
    TraversalSpec,
    Update,
    UpdateRef,
)
from repro.core.pseudotail import NotPseudoTailRecursive


def _true(ctx, node, pt, args):
    return np.ones(len(node), dtype=bool)


def _noop(ctx, node, pt, args):
    return None


def _spec(body, **kw):
    defaults = dict(conditions={"c": _true, "c2": _true}, updates={"u": _noop})
    defaults.update(kw)
    return TraversalSpec(name="t", body=body, **defaults)


def fig4_spec():
    return _spec(
        Seq(
            If(CondRef("c"), Return()),
            If(
                CondRef("c2", point_dependent=False),
                Seq(Update(UpdateRef("u")), Return()),
                Seq(Recurse(ChildRef("left")), Recurse(ChildRef("right"))),
            ),
        )
    )


def fig5_spec():
    return _spec(
        Seq(
            If(CondRef("c"), Return()),
            If(
                CondRef("c2"),
                Seq(Recurse(ChildRef("left")), Recurse(ChildRef("right"))),
                Seq(Recurse(ChildRef("right")), Recurse(ChildRef("left"))),
            ),
        )
    )


class TestRewriteShapes:
    def test_returns_become_continue(self):
        kernel = apply_autoropes(fig4_spec())
        kinds = [type(s).__name__ for s in kernel.body.walk()]
        assert "Return" not in kinds
        assert "Continue" in kinds

    def test_recursions_become_one_push_group(self):
        kernel = apply_autoropes(fig4_spec())
        groups = kernel.push_groups()
        assert len(groups) == 1
        assert len(groups[0].calls) == 2

    def test_push_order_is_reversed(self):
        """Fig. 6: recurse(left); recurse(right) pushes right, then left."""
        kernel = apply_autoropes(fig4_spec())
        (group,) = kernel.push_groups()
        assert [c.child.name for c in group.calls] == ["left", "right"]
        assert [c.child.name for c in group.push_order] == ["right", "left"]

    def test_guided_two_groups(self):
        kernel = apply_autoropes(fig5_spec())
        groups = kernel.push_groups()
        assert len(groups) == 2
        orders = [tuple(c.child.name for c in g.calls) for g in groups]
        assert orders == [("left", "right"), ("right", "left")]

    def test_eight_way_group(self):
        spec = _spec(
            If(
                CondRef("c"),
                Update(UpdateRef("u")),
                Seq(*[Recurse(ChildRef(f"c{i}")) for i in range(8)]),
            )
        )
        kernel = apply_autoropes(spec)
        (group,) = kernel.push_groups()
        assert [c.child.name for c in group.push_order] == [
            f"c{i}" for i in range(7, -1, -1)
        ]
        assert kernel.max_pushes_per_visit == 8

    def test_kernel_flags(self):
        kernel = apply_autoropes(fig4_spec())
        assert kernel.unguided
        assert not kernel.lockstep
        assert kernel.vote_conditions == frozenset()

    def test_trailing_call_after_branch_handled_via_tail_duplication(self):
        spec = _spec(
            Seq(
                If(CondRef("c"), Recurse(ChildRef("left")), Recurse(ChildRef("right"))),
                Recurse(ChildRef("left")),
            )
        )
        kernel = apply_autoropes(spec)
        # Two groups (one per arm), each with two calls.
        groups = kernel.push_groups()
        assert [len(g.calls) for g in groups] == [2, 2]


class TestRewriteErrors:
    def test_non_pseudo_tail_rejected(self):
        spec = _spec(Seq(Recurse(ChildRef("left")), Update(UpdateRef("u"))))
        with pytest.raises(NotPseudoTailRecursive):
            apply_autoropes(spec)

    def test_update_between_calls_rejected(self):
        spec = _spec(
            Seq(
                Recurse(ChildRef("left")),
                Update(UpdateRef("u")),
                Recurse(ChildRef("right")),
            )
        )
        with pytest.raises(NotPseudoTailRecursive):
            apply_autoropes(spec)


class TestArgHandling:
    def test_variant_args_recorded(self):
        spec = _spec(
            Seq(Recurse(ChildRef("left")), Recurse(ChildRef("right"))),
            args=(ArgDecl("dsq", 4.0, update="q"), ArgDecl("c", 1.0)),
            arg_rules={"q": lambda c, n, p, a: a["dsq"] * 0.25},
        )
        kernel = apply_autoropes(spec)
        assert [a.name for a in kernel.spec.variant_args] == ["dsq"]
        assert [a.name for a in kernel.spec.invariant_args] == ["c"]


class TestCompiledApps:
    """The five benchmark specs all transform cleanly (integration)."""

    def test_all_apps_compile(self, all_apps, compiled_apps):
        for name, compiled in compiled_apps.items():
            assert compiled.analysis.pseudo_tail_recursive, name
            assert compiled.autoropes.push_groups(), name

    def test_guided_classification_matches_apps(self, all_apps, compiled_apps):
        for name, app in all_apps.items():
            assert compiled_apps[name].analysis.guided == app.expect_guided, name

    def test_bh_has_eight_call_sites(self, compiled_apps):
        bh = compiled_apps["bh"]
        assert len(bh.analysis.call_sets) == 1
        assert len(bh.analysis.call_sets[0]) == 8

    def test_guided_apps_have_two_call_sets(self, compiled_apps):
        for name in ("knn", "nn", "vp"):
            assert len(compiled_apps[name].analysis.call_sets) == 2, name
