"""Fleet-wide distributed tracing: propagation, assembly, determinism.

The acceptance criteria of ISSUE 9 live here:

* a scatter ticket across >= 2 workers renders as ONE trace — every
  worker-side span carries the router-minted trace id and parents
  (directly or through its batch span) under the ticket span;
* the merged timeline is served at the fleet ``/tracez`` (JSON and
  Chrome ``trace_event`` with one process track per worker) and the
  merged ``/metrics`` exposition carries exemplar trace ids and passes
  the strict validator;
* chaos: killing a worker mid-scatter loses no trace identity — the
  retried rows' spans still parent under the original ticket's trace
  id, and two same-seed runs (same kill included) produce
  bit-identical normalized span trees;
* supervisor recovery spans (``fleet.recover``) appear in the merged
  timeline;
* tracing off is zero-cost: no ticket spans, no ``spans`` payloads,
  ``/tracez`` answers ``enabled: false``.
"""

import json

import numpy as np

from repro.fleet.router import (
    FleetConfig,
    FleetRouter,
    FleetServer,
    RestartPolicy,
)
from repro.points.datasets import dataset_by_name
from repro.telemetry import OTLPExporter, derive_trace_id
from repro.telemetry.otlp import otlp_span_id, otlp_trace_id
from tests.otlp_stub import OTLPCollectorStub
from tests.test_serve import assert_valid_prometheus

N_DATA = 256


def _fleet(workers=2, **kw) -> FleetRouter:
    cfg = FleetConfig(
        workers=workers,
        pin_cpus=False,
        scatter_threshold=kw.pop("scatter_threshold", 8),
        call_timeout_s=60.0,
        service=kw.pop("service", {"max_batch": 64, "max_wait_ms": 2.0}),
        restart=kw.pop("restart", RestartPolicy(backoff_base_ms=0.0)),
        **kw,
    )
    router = FleetRouter(cfg)
    router.start()
    return router


def _register_geo(router, n=N_DATA, seed=7):
    geo = dataset_by_name("geocity", n, seed=seed)
    router.register("pc-geocity", "pc", geo.points, radius=0.1, leaf_size=4)
    return geo


def _ticket_spans(payload: dict, trace_id: str):
    """Split one trace's spans into (ticket_span, children-by-worker)."""
    spans = [s for s in payload["spans"] if s["trace_id"] == trace_id]
    tickets = [s for s in spans if s["name"] == "fleet.ticket"]
    assert len(tickets) == 1
    return tickets[0], [s for s in spans if s is not tickets[0]]


def _normalize(spans) -> list:
    """Span tree reduced to its seed-determined identity tuple."""
    return sorted(
        (
            s["trace_id"], s["span_id"], s.get("parent_id"),
            s["name"], s["worker"], s.get("status"),
            float(s.get("t_start_ms") or 0.0),
            float(s.get("t_end_ms") or 0.0),
        )
        for s in spans
    )


class TestOneTracePerTicket:
    def test_scatter_ticket_renders_as_one_trace(self):
        """Acceptance: a scattered batch across 2 workers is ONE trace."""
        router = _fleet(workers=2)
        try:
            geo = _register_geo(router)
            res = router.submit_many("pc-geocity", geo.points[:16], now=5.0)
            assert len(res) == 16 and all(r["ok"] for r in res)

            payload = router.tracez()
            assert payload["enabled"] is True
            assert payload["workers"] == ["router", "w0", "w1"]

            trace_id = derive_trace_id(router.config.seed, "ticket:0")
            tspan, children = _ticket_spans(payload, trace_id)
            assert tspan["worker"] == "router"
            assert tspan["status"] == "ok"
            assert tspan["args"]["mode"] == "scatter"

            # Every child parents under the ticket span directly (query
            # and batch spans) or through its batch span (launch spans).
            by_id = {s["span_id"]: s for s in children}
            for span in children:
                parent = span["parent_id"]
                while parent != tspan["span_id"]:
                    parent = by_id[parent]["parent_id"]
            # ... and the work really ran on both shards.
            assert {s["worker"] for s in children} == {"w0", "w1"}
            assert any(s["name"].startswith("launch:") for s in children)
        finally:
            router.drain()

    def test_routed_ticket_traces_too(self):
        router = _fleet(workers=2)
        try:
            geo = _register_geo(router)
            router.submit_many("pc-geocity", geo.points[:2], now=5.0)
            payload = router.tracez()
            trace_id = derive_trace_id(router.config.seed, "ticket:0")
            tspan, children = _ticket_spans(payload, trace_id)
            assert tspan["args"]["mode"] == "routed"
            assert len({s["worker"] for s in children}) == 1
        finally:
            router.drain()

    def test_tracez_http_and_chrome_export(self):
        router = _fleet(
            workers=2,
            service={"max_batch": 64, "max_wait_ms": 2.0,
                     "telemetry": {"enabled": True,
                                   "profile_sample_rate": 1}},
        )
        server = FleetServer(router)
        try:
            geo = _register_geo(router)
            router.submit_many("pc-geocity", geo.points[:16], now=5.0)

            status, ctype, body = server.respond("/tracez?limit=4")
            assert status == 200
            payload = json.loads(body)
            assert payload["enabled"] is True
            assert len(payload["spans"]) == 4
            assert payload["ingested"] > 4

            status, _, body = server.respond("/tracez?limit=oops")
            assert status == 400

            status, _, body = server.respond("/tracez?format=chrome")
            assert status == 200
            chrome = json.loads(body)
            names = {
                e["args"]["name"]
                for e in chrome["traceEvents"]
                if e["name"] == "process_name"
            }
            # One process track per worker plus the router's own row.
            assert names == {"router", "w0", "w1"}
            assert any(e["ph"] == "b" for e in chrome["traceEvents"])

            status, _, body = server.respond("/profilez")
            assert status == 200
            prof = json.loads(body)
            assert prof["enabled"] is True
            assert set(prof["workers"]) == {"w0", "w1"}
        finally:
            router.drain()

    def test_merged_metrics_carry_exemplars_and_validate(self):
        """Acceptance: exemplar trace ids on merged histogram buckets,
        and the whole merged scrape passes the strict validator."""
        router = _fleet(workers=2)
        try:
            geo = _register_geo(router)
            router.submit_many("pc-geocity", geo.points[:16], now=5.0)
            text = router.metrics_text()
            assert_valid_prometheus(text)
            assert "# {trace_id=" in text
            trace_id = derive_trace_id(router.config.seed, "ticket:0")
            assert trace_id in text
            assert "fleet_trace_spans_ingested_total" in text
        finally:
            router.drain()


class TestChaosPropagation:
    """Satellite 3: trace context survives a chaos worker kill."""

    def _run_with_kill(self, seed=123):
        router = _fleet(workers=2, seed=seed)
        try:
            geo = _register_geo(router)
            victim = router.handles["w1"]
            victim.proc.kill()
            victim.proc.join()
            # w1 is still breaker-live at the scatter snapshot, so its
            # slice is computed, the exchange fails, and the rows come
            # back shard-lost for the retry to reclaim.
            res = router.submit_many("pc-geocity", geo.points[:16], now=5.0)
            assert len(res) == 16 and all(r["ok"] for r in res)
            payload = router.tracez()
            return payload, derive_trace_id(router.config.seed, "ticket:0")
        finally:
            router.drain()

    def test_retried_rows_parent_under_original_ticket(self):
        payload, trace_id = self._run_with_kill()
        tspan, children = _ticket_spans(payload, trace_id)
        assert tspan["status"] == "ok"
        # The retry is recorded on the ticket span itself...
        retries = [e for e in tspan["events"] if e["name"] == "scatter_retry"]
        assert len(retries) == 1
        assert retries[0]["args"]["worker"] == "w0"
        assert retries[0]["args"]["rows"] == 8
        # ... and every span of the retried rows carries the original
        # ticket's trace id, from the surviving worker.
        assert children, "retried rows produced no spans"
        assert {s["worker"] for s in children} == {"w0"}
        assert all(s["trace_id"] == trace_id for s in children)
        # The dead shard's rows are in the trace: all 16 rows' query
        # spans landed on w0 (8 sliced + 8 retried).
        queries = [s for s in children if s["name"] == "query"]
        assert len(queries) == 16

    def test_same_seed_runs_produce_identical_span_trees(self):
        """Determinism: trace ids, span ids, parentage and logical
        timestamps are pure functions of the fleet seed — even with a
        worker killed mid-scatter."""
        a, _ = self._run_with_kill(seed=123)
        b, _ = self._run_with_kill(seed=123)
        assert _normalize(a["spans"]) == _normalize(b["spans"])
        assert a["workers"] == b["workers"]

    def test_different_seeds_mint_different_trace_ids(self):
        a, trace_a = self._run_with_kill(seed=123)
        b, trace_b = self._run_with_kill(seed=124)
        assert trace_a != trace_b


class TestRecoverySpans:
    """Satellite 2: supervisor recovery spans join the merged timeline."""

    def test_heal_emits_fleet_recover_span(self):
        router = _fleet(workers=2)
        try:
            geo = _register_geo(router)
            victim = router.handles["w1"]
            victim.proc.kill()
            victim.proc.join()
            assert router.heal(now=50.0) == {"w1": "restarted"}

            payload = router.tracez()
            recovers = [
                s for s in payload["spans"] if s["name"] == "fleet.recover"
            ]
            assert len(recovers) == 1
            span = recovers[0]
            assert span["worker"] == "router"
            assert span["status"] == "ok"
            assert any(e["name"] == "replayed" for e in span["events"])

            # The healed worker traces again: a post-heal scatter shows
            # both incarnations' spans in one timeline.
            router.submit_many("pc-geocity", geo.points[:16], now=60.0)
            payload = router.tracez()
            assert "w1" in payload["workers"]
        finally:
            router.drain()


class TestOTLPEgress:
    def test_fleet_spans_reach_collector_with_parentage(self):
        """Acceptance: the scatter ticket is one trace at the collector
        too — worker spans arrive with the router-minted trace id."""
        with OTLPCollectorStub() as stub:
            router = _fleet(workers=2)
            try:
                exporter = OTLPExporter(
                    stub.endpoint, flush_ms=10_000.0,
                    service_name="repro-fleet",
                )
                router.attach_otlp(exporter)
                geo = _register_geo(router)
                router.submit_many("pc-geocity", geo.points[:16], now=5.0)
                router.drain_spans()
                exporter.flush()
                stats = router.statsz()["fleet"]["otlp"]
                assert stats["posts_ok"] >= 1
                assert stats["spans_dropped"] == 0
                trace_id = derive_trace_id(router.config.seed, "ticket:0")
            finally:
                router.drain()
        received = stub.spans()
        assert received
        wire_trace = otlp_trace_id(trace_id)
        ours = [s for s in received if s["traceId"] == wire_trace]
        by_id = {s["spanId"]: s for s in ours}
        ticket = by_id[otlp_span_id(f"{trace_id}:t0")]
        children = [
            s for s in ours if s.get("parentSpanId") == ticket["spanId"]
        ]
        assert children, "no spans parented under the ticket at the collector"

    def test_collector_loss_only_counts(self):
        """Satellite 5 in-process: a dead collector must not break the
        serve path — drops are counted, /metrics keeps exposing."""
        stub = OTLPCollectorStub().start()
        endpoint = stub.endpoint
        stub.stop()
        router = _fleet(workers=2)
        try:
            exporter = OTLPExporter(endpoint, flush_ms=10_000.0, timeout_s=0.5)
            router.attach_otlp(exporter)
            geo = _register_geo(router)
            res = router.submit_many("pc-geocity", geo.points[:16], now=5.0)
            assert all(r["ok"] for r in res)
            exporter.flush()
            assert exporter.stats()["post_failures"] >= 1
            assert exporter.stats()["spans_dropped"] > 0
            text = router.metrics_text()
            assert_valid_prometheus(text)
            assert "otlp_spans_dropped_total" in text
            assert router.healthz()["ok"]
        finally:
            router.drain()


class TestZeroCostOff:
    def test_trace_off_fleet(self):
        router = _fleet(workers=2, trace=False)
        server = FleetServer(router)
        try:
            geo = _register_geo(router)
            res = router.submit_many("pc-geocity", geo.points[:16], now=5.0)
            assert all(r["ok"] for r in res)
            assert router.trace is None
            assert router.tracez() == {
                "enabled": False, "spans": [], "workers": [],
            }
            assert router.drain_spans() == 0
            status, _, body = server.respond("/tracez")
            assert json.loads(body)["enabled"] is False
            status, _, body = server.respond("/tracez?format=chrome")
            assert json.loads(body) == {"traceEvents": []}
            assert router.statsz()["fleet"]["trace"] is None
            text = router.metrics_text()
            assert_valid_prometheus(text)
            assert "fleet_trace_spans_ingested_total" not in text
        finally:
            router.drain()

    def test_worker_telemetry_off_ships_no_spans(self):
        """Workers with telemetry disabled answer submit and
        trace_drain without ever attaching a spans payload; the router
        still traces its own tickets."""
        router = _fleet(
            workers=2,
            service={"max_batch": 64, "max_wait_ms": 2.0,
                     "telemetry": {"enabled": False}},
        )
        try:
            geo = _register_geo(router)
            res = router.submit_many("pc-geocity", geo.points[:16], now=5.0)
            assert all(r["ok"] for r in res)
            assert router.drain_spans() == 0
            payload = router.tracez()
            assert payload["workers"] == ["router"]
            assert all(s["worker"] == "router" for s in payload["spans"])
        finally:
            router.drain()
