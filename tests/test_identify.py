"""Structure identification tests (Section 5.1)."""

import numpy as np
import pytest

from repro.core.annotations import Annotation
from repro.core.identify import StructureError, identify_structure
from repro.core.ir import (
    ChildRef,
    CondRef,
    If,
    Recurse,
    Return,
    Seq,
    TraversalSpec,
    Update,
    UpdateRef,
    for_each_child,
)


class TestForEachChild:
    def test_unrolls_to_recursions(self):
        seq = for_each_child("c0", "c1", "c2")
        assert len(seq.stmts) == 3
        assert all(isinstance(s, Recurse) for s in seq.stmts)
        assert [s.child.name for s in seq.stmts] == ["c0", "c1", "c2"]

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            for_each_child()

    def test_matches_bh_body(self, bh_app):
        """BH's eight Recurse statements are what for_each_child makes."""
        names = [
            s.child.name
            for s in bh_app.spec.body.walk()
            if isinstance(s, Recurse)
        ]
        sugar = [s.child.name for s in for_each_child(*[f"c{i}" for i in range(8)]).stmts]
        assert names == sugar


class TestIdentify:
    def test_pc_report(self, pc_app):
        rep = identify_structure(pc_app.spec, pc_app.tree)
        assert rep.recursive_fields == ("left", "right")
        assert rep.n_call_sites == 2
        assert "cannot_correlate" in rep.point_dependent_conditions
        assert "is_leaf" in rep.structural_conditions
        assert rep.updates == ("count_bucket",)
        assert not rep.point_loop_annotated_independent

    def test_bh_report(self, bh_app):
        rep = identify_structure(bh_app.spec, bh_app.tree)
        assert rep.n_call_sites == 8
        assert rep.traversal_args == ("dsq",)
        assert set(rep.recursive_fields) == {f"c{i}" for i in range(8)}

    def test_all_apps_identify(self, all_apps):
        for name, app in all_apps.items():
            rep = identify_structure(app.spec, app.tree)
            assert rep.n_call_sites >= 2, name
            assert rep.updates, name

    def test_no_recursion_rejected(self, pc_app):
        spec = TraversalSpec(name="flat", body=Return())
        with pytest.raises(StructureError, match="no recursive call"):
            identify_structure(spec, pc_app.tree)

    def test_unknown_child_slot_rejected(self, pc_app):
        spec = TraversalSpec(
            name="bad", body=Recurse(ChildRef("middle"))
        )
        with pytest.raises(StructureError, match="child slots"):
            identify_structure(spec, pc_app.tree)

    def test_unknown_field_group_rejected(self, pc_app):
        def t(ctx, node, pt, args):
            return np.ones(len(node), dtype=bool)

        spec = TraversalSpec(
            name="bad",
            body=Seq(
                If(CondRef("c", reads=("warm",)), Return()),
                Recurse(ChildRef("left")),
            ),
            conditions={"c": t},
        )
        with pytest.raises(KeyError, match="warm"):
            identify_structure(spec, pc_app.tree)

    def test_annotation_requirement(self, pc_app):
        with pytest.raises(StructureError, match="POINT_LOOP_INDEPENDENT"):
            identify_structure(pc_app.spec, pc_app.tree, require_annotation=True)

        annotated = TraversalSpec(
            name="pc2",
            body=pc_app.spec.body,
            args=pc_app.spec.args,
            conditions=pc_app.spec.conditions,
            updates=pc_app.spec.updates,
            arg_rules=pc_app.spec.arg_rules,
            annotations=frozenset({Annotation.POINT_LOOP_INDEPENDENT}),
        )
        rep = identify_structure(annotated, pc_app.tree, require_annotation=True)
        assert rep.point_loop_annotated_independent

    def test_notes_flag_oddities(self, pc_app):
        def t(ctx, node, pt, args):
            return np.ones(len(node), dtype=bool)

        spec = TraversalSpec(
            name="odd",
            body=Seq(Recurse(ChildRef("left"))),  # no update, no truncation
        )
        rep = identify_structure(spec, pc_app.tree)
        assert any("no updates" in n for n in rep.notes)
        assert any("no truncating path" in n for n in rep.notes)
        assert any("never descended" in n for n in rep.notes)
