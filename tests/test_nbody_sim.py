"""Multi-timestep Barnes-Hut simulation tests."""

import numpy as np
import pytest

from repro.apps.nbody_sim import NBodySimulation
from repro.gpusim.device import small_test_device
from repro.points.datasets import plummer_bodies


@pytest.fixture(scope="module")
def sim_result():
    bodies = plummer_bodies(n=160, seed=9)
    sim = NBodySimulation(
        bodies=bodies, dt=0.01, leaf_size=4, device=small_test_device()
    )
    history = sim.run(steps=3)
    return sim, history


class TestSimulation:
    def test_runs_requested_steps(self, sim_result):
        sim, history = sim_result
        assert len(history) == 3
        assert sim.total_traversal_ms > 0

    def test_bodies_move(self, sim_result):
        sim, _ = sim_result
        fresh = plummer_bodies(n=160, seed=9)
        assert not np.allclose(sim.bodies.pos, fresh.pos)

    def test_mass_preserved(self, sim_result):
        sim, _ = sim_result
        fresh = plummer_bodies(n=160, seed=9)
        np.testing.assert_array_equal(sim.bodies.mass, fresh.mass)

    def test_momentum_drift_is_small(self, sim_result):
        """BH forces are approximate, so momentum is conserved only to
        the opening-angle error; it must stay near zero."""
        _, history = sim_result
        for step in history:
            assert np.linalg.norm(step.momentum) < 0.05

    def test_kinetic_energy_finite_and_positive(self, sim_result):
        _, history = sim_result
        for step in history:
            assert np.isfinite(step.kinetic_energy)
            assert step.kinetic_energy > 0

    def test_bad_steps_rejected(self):
        sim = NBodySimulation(
            bodies=plummer_bodies(n=32, seed=1), device=small_test_device()
        )
        with pytest.raises(ValueError):
            sim.run(steps=0)

    def test_unsorted_mode_costs_more(self):
        """Skipping the per-step sort raises the traversal time (the
        Section 4.4 effect, measured through the whole simulation)."""
        bodies = plummer_bodies(n=160, seed=10)
        dev = small_test_device()
        sorted_sim = NBodySimulation(bodies=bodies, device=dev, sort_points=True)
        shuffled = NBodySimulation(bodies=bodies, device=dev, sort_points=False)
        t_sorted = sorted_sim.step().traversal_ms
        t_unsorted = shuffled.step().traversal_ms
        # identity order on a Plummer sphere is spatially uncorrelated
        # enough to behave like the unsorted case
        assert t_sorted <= t_unsorted * 1.05
