"""Structured logging pillar: EventLog core, service instrumentation,
serve-mode /logz + /debugz, and exemplar preservation through the
fleet merge helpers.

The e2e fleet correlation tests (logs/spans/exemplars joining on one
trace id across processes) live in tests/test_fleet_logging.py; this
file covers everything reachable in-process.
"""

import json

import numpy as np
import pytest

from repro.gpusim.faults import ChaosConfig
from repro.service.serve import TraversalServer
from repro.service.service import Overloaded, ServiceConfig, TraversalService
from repro.telemetry import (
    LEVELS,
    EventLog,
    Telemetry,
    TelemetryConfig,
    level_rank,
)
from repro.telemetry.metrics import (
    MetricsRegistry,
    expose_export_text,
    merge_labeled_exports,
    sum_exports,
)
from repro.telemetry.tracing import TraceContext, Tracer


# ---------------------------------------------------------------------------
# EventLog unit behaviour
# ---------------------------------------------------------------------------


class TestEventLog:
    def test_levels_are_ordered_and_validated(self):
        assert LEVELS == ("debug", "info", "warn", "error")
        assert [level_rank(l) for l in LEVELS] == [0, 1, 2, 3]
        with pytest.raises(ValueError):
            level_rank("fatal")
        log = EventLog()
        with pytest.raises(ValueError):
            log.log("loud", "boom", 0.0)
        assert log.recorded == 0  # a typo never becomes a record

    def test_record_shape_and_sorted_fields(self):
        log = EventLog()
        rec = log.warn("retry", 12.5, zebra=1, alpha=2)
        assert rec == {
            "seq": 0, "t_ms": 12.5, "level": "warn", "event": "retry",
            "trace_id": None, "span_id": None,
            "fields": {"alpha": 2, "zebra": 1},
        }
        assert list(rec["fields"]) == ["alpha", "zebra"]
        json.dumps(rec)  # JSON-safe by construction

    def test_trace_stamping_from_tracer_context(self):
        tracer = Tracer()
        log = EventLog(tracer=tracer)
        prev = tracer.activate(
            TraceContext(trace_id="t-123", parent_span_id="s-root")
        )
        rec = log.info("inside", 1.0)
        tracer.activate(prev)
        outside = log.info("outside", 2.0)
        assert rec["trace_id"] == "t-123"
        assert rec["span_id"] == "s-root"
        assert outside["trace_id"] is None

    def test_explicit_ids_override_context(self):
        tracer = Tracer()
        log = EventLog(tracer=tracer)
        tracer.activate(TraceContext(trace_id="t-ctx", parent_span_id="s-ctx"))
        rec = log.log("info", "x", 1.0, trace_id="t-mine", span_id="s-mine")
        assert rec["trace_id"] == "t-mine"
        assert rec["span_id"] == "s-mine"

    def test_ring_drops_oldest_and_counts(self):
        log = EventLog(capacity=3)
        drops = []
        log.on_drop = lambda: drops.append(1)
        for i in range(5):
            log.info(f"e{i}", float(i))
        assert len(log) == 3
        assert log.recorded == 5
        assert log.dropped == 2
        assert len(drops) == 2
        assert [r["event"] for r in log.records()] == ["e2", "e3", "e4"]
        # seq keeps counting across evictions
        assert [r["seq"] for r in log.records()] == [2, 3, 4]

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            EventLog(capacity=0)

    def test_level_filter_is_a_floor(self):
        log = EventLog()
        for lvl in LEVELS:
            log.log(lvl, f"ev-{lvl}", 0.0)
        assert len(log.records(level="debug")) == 4
        assert [r["level"] for r in log.records(level="warn")] == [
            "warn", "error"
        ]
        with pytest.raises(ValueError):
            log.records(level="bogus")

    def test_trace_filter_and_limit_keep_newest(self):
        log = EventLog()
        for i in range(6):
            log.info(f"e{i}", float(i), trace_id="t-a" if i % 2 else "t-b")
        hits = log.records(trace_id="t-a")
        assert [r["event"] for r in hits] == ["e1", "e3", "e5"]
        assert [r["event"] for r in log.records(limit=2)] == ["e4", "e5"]
        assert log.records(limit=0) == []

    def test_outbox_ships_and_bounds(self):
        log = EventLog()
        log.info("before", 0.0)
        assert not log.outbox_enabled
        log.enable_outbox(capacity=2)
        assert log.outbox_enabled
        assert log.drain_outbox() == []  # pre-enable records don't ship
        for i in range(4):
            log.warn(f"w{i}", float(i))
        shipped = log.drain_outbox()
        assert [r["event"] for r in shipped] == ["w2", "w3"]
        assert log.outbox_dropped == 2
        assert log.drain_outbox() == []
        # ring is unaffected by outbox drains
        assert log.recorded == 5
        assert len(log.records()) == 5


class TestTelemetryWiring:
    def test_enabled_telemetry_carries_event_log(self):
        tel = Telemetry.from_config(TelemetryConfig(enabled=True))
        assert tel.log is not None
        assert tel.log.tracer is tel.tracer
        tel.log.info("hello", 0.0)
        snap = tel.snapshot()
        assert snap.log_records == 1
        assert snap.log_records_dropped == 0

    def test_log_disabled_and_null_telemetry(self):
        tel = Telemetry.from_config(TelemetryConfig(enabled=True, log=False))
        assert tel.log is None
        off = Telemetry.from_config(TelemetryConfig(enabled=False))
        assert off.log is None

    def test_ring_drop_feeds_counter(self):
        tel = Telemetry.from_config(
            TelemetryConfig(enabled=True, log_capacity=2)
        )
        for i in range(5):
            tel.log.info(f"e{i}", float(i))
        export = tel.registry.to_dict()
        fam = export["log_records_dropped_total"]
        assert fam["series"][0]["value"] == 3.0

    def test_log_capacity_validated(self):
        with pytest.raises(ValueError):
            TelemetryConfig(enabled=True, log_capacity=0)


# ---------------------------------------------------------------------------
# Service instrumentation: load-bearing decisions become records
# ---------------------------------------------------------------------------


def _service(**kw) -> TraversalService:
    defaults = dict(
        telemetry=TelemetryConfig(enabled=True),
        memo_capacity=0,
        max_batch=16,
    )
    defaults.update(kw)
    svc = TraversalService(ServiceConfig(**defaults))
    rng = np.random.default_rng(11)
    svc.register("pc", "pc", rng.random((256, 2)), radius=0.1)
    return svc


def _events(svc: TraversalService, level=None):
    return [r["event"] for r in svc.telemetry.log.records(level=level)]


class TestServiceInstrumentation:
    def test_admission_shed_reject_new(self):
        svc = _service(max_queue_depth=2, max_batch=1024, max_wait_ms=1e9)
        rng = np.random.default_rng(3)
        with pytest.raises(Overloaded):
            for i in range(5):
                svc.submit("pc", rng.random(2), now=float(i))
        recs = [r for r in svc.telemetry.log.records()
                if r["event"] == "admission.shed"]
        assert recs
        assert recs[0]["level"] == "warn"
        assert recs[0]["fields"]["policy"] == "reject-new"
        assert recs[0]["fields"]["cap"] == 2

    def test_admission_shed_drop_oldest(self):
        svc = _service(
            max_queue_depth=2, shed_policy="drop-oldest",
            max_batch=1024, max_wait_ms=1e9,
        )
        rng = np.random.default_rng(3)
        for i in range(5):
            svc.submit("pc", rng.random(2), now=float(i))
        recs = [r for r in svc.telemetry.log.records()
                if r["event"] == "admission.shed"]
        assert len(recs) == 3
        assert all(r["fields"]["policy"] == "drop-oldest" for r in recs)
        assert all("ticket" in r["fields"] for r in recs)

    def test_chaos_faults_and_retries_logged(self):
        svc = _service(
            chaos=ChaosConfig(seed=1337, p_backend_error=0.7),
        )
        rng = np.random.default_rng(13)
        for _ in range(4):
            svc.query_many("pc", rng.random((16, 2)), now=svc.now_ms + 1.0)
        events = set(_events(svc))
        assert "chaos.fault" in events
        assert "retry" in events
        retry = next(r for r in svc.telemetry.log.records()
                     if r["event"] == "retry")
        assert retry["level"] == "warn"
        for key in ("batch", "backend", "attempt", "error"):
            assert key in retry["fields"]

    def test_batch_failed_is_error_level(self, monkeypatch):
        from repro.service.dispatch import AdaptiveDispatcher

        svc = _service()

        def boom(self, session, coords, backend, fault_plan=None):
            raise RuntimeError("kaboom")

        monkeypatch.setattr(AdaptiveDispatcher, "execute", boom)
        rng = np.random.default_rng(5)
        svc.query_many("pc", rng.random((8, 2)), now=1.0)
        errors = svc.telemetry.log.records(level="error")
        assert errors
        rec = errors[0]
        assert rec["event"] == "batch.failed"
        assert rec["fields"]["session"] == "pc"
        assert "error" in rec["fields"]

    def test_disabled_telemetry_means_no_log(self):
        svc = TraversalService(ServiceConfig())
        assert svc.telemetry.log is None
        rng = np.random.default_rng(2)
        svc.register("pc", "pc", rng.random((64, 2)), radius=0.1)
        svc.query_many("pc", rng.random((8, 2)), now=1.0)  # no crash

    def test_same_seed_runs_are_bit_identical(self):
        streams = []
        for _ in range(2):
            svc = _service(
                chaos=ChaosConfig(seed=1337, p_backend_error=0.4),
                max_queue_depth=24,
            )
            rng = np.random.default_rng(13)
            for _ in range(4):
                try:
                    svc.query_many(
                        "pc", rng.random((16, 2)), now=svc.now_ms + 1.0
                    )
                except Overloaded:
                    pass
            streams.append(json.dumps(
                svc.telemetry.log.records(), sort_keys=True
            ))
        assert streams[0] == streams[1]


# ---------------------------------------------------------------------------
# Serve-mode endpoints: /logz and /debugz
# ---------------------------------------------------------------------------


def _server(**kw) -> TraversalServer:
    svc = _service(**kw)
    rng = np.random.default_rng(12)
    svc.query_many("pc", rng.random((24, 2)), now=svc.now_ms + 1.0)
    return TraversalServer(svc)


class TestLogzEndpoint:
    def test_logz_payload(self):
        server = _server(
            chaos=ChaosConfig(seed=1337, p_backend_error=0.5),
        )
        status, _, body = server.respond("/logz")
        assert status == 200
        payload = json.loads(body)
        assert payload["enabled"] is True
        assert payload["recorded"] == len(payload["records"])
        assert payload["dropped"] == 0
        assert all("event" in r and "level" in r for r in payload["records"])

    def test_logz_filters(self):
        server = _server(
            chaos=ChaosConfig(seed=1337, p_backend_error=0.5),
        )
        payload = json.loads(server.respond("/logz?level=warn&limit=2")[2])
        assert len(payload["records"]) <= 2
        assert all(r["level"] in ("warn", "error")
                   for r in payload["records"])
        tid = payload["records"][0]["trace_id"]
        if tid:
            scoped = json.loads(
                server.respond(f"/logz?trace_id={tid}")[2]
            )
            assert scoped["records"]
            assert all(r["trace_id"] == tid for r in scoped["records"])

    def test_logz_disabled(self):
        svc = TraversalService(ServiceConfig())
        server = TraversalServer(svc)
        status, _, body = server.respond("/logz")
        assert status == 200
        payload = json.loads(body)
        assert payload == {
            "enabled": False, "records": [], "recorded": 0, "dropped": 0
        }

    def test_logz_bad_params_are_400_json(self):
        server = _server()
        for path in ("/logz?limit=abc", "/logz?limit=-1",
                     "/logz?level=bogus"):
            status, ctype, body = server.respond(path)
            assert status == 400, path
            assert "json" in ctype
            assert "error" in json.loads(body)

    def test_statsz_and_tracez_bad_limit_400(self):
        server = _server()
        for path in ("/statsz?limit=abc", "/statsz?limit=-3",
                     "/tracez?limit=abc", "/tracez?limit=-1"):
            status, _, body = server.respond(path)
            assert status == 400, path
            assert "error" in json.loads(body)

    def test_404_lists_logz_and_debugz(self):
        server = _server()
        payload = json.loads(server.respond("/nothing")[2])
        assert "/logz" in payload["routes"]
        assert "/debugz" in payload["routes"]


class TestDebugzEndpoint:
    def test_debugz_snapshot_shape(self):
        server = _server()
        server.service.telemetry.log.error(
            "batch.failed", server.service.now_ms,
            trace_id="t-dead", session="pc", error="backend_unavailable",
        )
        status, _, body = server.respond("/debugz")
        assert status == 200
        payload = json.loads(body)
        for key in ("config", "now_ms", "sessions", "engines",
                    "plan_cache", "breakers", "queue", "telemetry",
                    "recent_errors"):
            assert key in payload, key
        assert payload["telemetry"]["enabled"] is True
        assert payload["recent_errors"]
        assert payload["recent_errors"][0]["level"] == "error"
        # Strict JSON: a standards-compliant parser must accept it.
        json.loads(body.decode(), parse_constant=_reject_constants)

    def test_debugz_telemetry_off(self):
        svc = TraversalService(ServiceConfig())
        server = TraversalServer(svc)
        status, _, body = server.respond("/debugz")
        assert status == 200
        payload = json.loads(body)
        assert payload["telemetry"]["enabled"] is False
        assert payload["recent_errors"] == []


def _reject_constants(name):
    raise ValueError(f"non-strict JSON constant {name!r}")


# ---------------------------------------------------------------------------
# Satellite: exemplars survive the fleet merge helpers
# ---------------------------------------------------------------------------


def _registry_with_exemplar(trace_id: str, v: float) -> MetricsRegistry:
    reg = MetricsRegistry()
    h = reg.histogram(
        "rt_ms", "latency", buckets=(1.0, 10.0), labels=("session",)
    )
    h.observe(v, exemplar=trace_id, session="pc")
    return reg


class TestExemplarMerge:
    def test_merge_labeled_exports_preserves_exemplars(self):
        merged = merge_labeled_exports({
            "w0": _registry_with_exemplar("t-w0", 0.5).to_dict(),
            "w1": _registry_with_exemplar("t-w1", 5.0).to_dict(),
        })
        series = merged["rt_ms"]["series"]
        assert len(series) == 2
        by_worker = {s["labels"]["worker"]: s for s in series}
        assert by_worker["w0"]["exemplars"][0]["trace_id"] == "t-w0"
        assert by_worker["w1"]["exemplars"][1]["trace_id"] == "t-w1"

    def test_sum_exports_unions_exemplars_bucketwise(self):
        summed = sum_exports({
            "w0": _registry_with_exemplar("t-w0", 0.5).to_dict(),
            "w1": _registry_with_exemplar("t-w1", 5.0).to_dict(),
        })
        series = summed["rt_ms"]["series"][0]
        assert series["count"] == 2
        ex = series["exemplars"]
        assert ex[0]["trace_id"] == "t-w0"   # bucket le=1.0
        assert ex[1]["trace_id"] == "t-w1"   # bucket le=10.0

    def test_sum_exports_same_bucket_keeps_larger_value(self):
        summed = sum_exports({
            "w0": _registry_with_exemplar("t-small", 2.0).to_dict(),
            "w1": _registry_with_exemplar("t-big", 9.0).to_dict(),
        })
        ex = summed["rt_ms"]["series"][0]["exemplars"]
        assert ex[1] == {"trace_id": "t-big", "value": 9.0}

    def test_merged_export_text_is_valid_openmetrics(self):
        from tests.prometheus_validator import validate

        merged = merge_labeled_exports({
            "w0": _registry_with_exemplar("t-w0", 0.5).to_dict(),
            "w1": _registry_with_exemplar("t-w1", 5.0).to_dict(),
        })
        text = expose_export_text(merged)
        assert '# {trace_id="t-w0"}' in text
        validate(text)
        summed_text = expose_export_text(sum_exports({
            "w0": _registry_with_exemplar("t-w0", 0.5).to_dict(),
            "w1": _registry_with_exemplar("t-w1", 5.0).to_dict(),
        }))
        assert '# {trace_id="' in summed_text
        validate(summed_text)
