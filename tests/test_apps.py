"""Application-level tests: oracles, self-exclusion, parameters,
and physics sanity for Barnes-Hut."""

import numpy as np
import pytest

from repro.apps.barneshut import build_barneshut_app, exact_forces
from repro.apps.base import QuerySet, chunked_sq_dists, pairwise_sq_dists, sq_dist_rows
from repro.apps.knn import build_knn_app
from repro.apps.nn import build_nn_app
from repro.apps.pointcorr import build_pointcorr_app
from repro.apps.vptree_nn import build_vptree_app
from repro.core.pipeline import TransformPipeline
from repro.cpusim.recursive import RecursiveInterpreter
from repro.gpusim.executors import AutoropesExecutor, TraversalLaunch
from repro.points.datasets import plummer_bodies, random_points
from repro.points.sorting import morton_order, shuffled_order


class TestBaseHelpers:
    def test_queryset_alignment_checked(self):
        with pytest.raises(ValueError, match="align"):
            QuerySet(coords=np.zeros((3, 2)), orig_ids=np.arange(4))

    def test_queryset_from_order(self):
        data = np.arange(10, dtype=float).reshape(5, 2)
        q = QuerySet.from_order(data, np.array([3, 1]))
        np.testing.assert_array_equal(q.coords, data[[3, 1]])
        np.testing.assert_array_equal(q.orig_ids, [3, 1])

    def test_distance_helpers_agree(self):
        rng = np.random.default_rng(0)
        a, b = rng.normal(size=(7, 3)), rng.normal(size=(9, 3))
        full = pairwise_sq_dists(a, b)
        chunked = chunked_sq_dists(a, b, chunk=2)
        np.testing.assert_allclose(full, chunked)
        rows = sq_dist_rows(a, a)
        np.testing.assert_allclose(rows, 0.0, atol=1e-15)


class TestPointCorrelation:
    def test_counts_via_interpreter(self, pc_app, oracles):
        """The recursive spec itself (no GPU) matches brute force."""
        ctx = pc_app.make_ctx()
        interp = RecursiveInterpreter(pc_app.spec, pc_app.tree, ctx)
        for p in range(pc_app.n_points):
            interp.run_point(p)
        pc_app.check(ctx.out, oracles["pc"])

    def test_self_excluded(self, points3d):
        app = build_pointcorr_app(points3d, np.arange(len(points3d)),
                                  radius=1e-9, leaf_size=4)
        want = app.brute_force()
        assert (want["count"] == 0).all()

    def test_radius_zero_boundary(self, points3d):
        # radius large enough to include everything
        app = build_pointcorr_app(points3d, np.arange(len(points3d)),
                                  radius=10.0, leaf_size=4)
        want = app.brute_force()
        assert (want["count"] == len(points3d) - 1).all()


class TestKNN:
    def test_k_results_sorted_ascending(self, knn_app, compiled_apps, device4):
        L = TraversalLaunch(
            kernel=compiled_apps["knn"].autoropes, tree=knn_app.tree,
            ctx=knn_app.make_ctx(), n_points=knn_app.n_points, device=device4,
        )
        AutoropesExecutor(L).run()
        d = L.ctx.out["knn_dist"]
        assert (np.diff(d, axis=1) >= -1e-12).all()
        assert np.isfinite(d).all()

    def test_ids_are_valid_and_distinct(self, knn_app, compiled_apps, device4):
        L = TraversalLaunch(
            kernel=compiled_apps["knn"].autoropes, tree=knn_app.tree,
            ctx=knn_app.make_ctx(), n_points=knn_app.n_points, device=device4,
        )
        AutoropesExecutor(L).run()
        ids = L.ctx.out["knn_id"]
        assert (ids >= 0).all()
        for row, mine in zip(ids, knn_app.queries.orig_ids):
            assert len(set(row.tolist())) == len(row)
            assert mine not in row

    def test_k_bounds_checked(self, points3d):
        with pytest.raises(ValueError, match="k must be"):
            build_knn_app(points3d, np.arange(len(points3d)), k=0)
        with pytest.raises(ValueError, match="k must be"):
            build_knn_app(points3d, np.arange(len(points3d)), k=len(points3d))

    def test_k1_equals_nn(self, points3d, device4):
        order = np.arange(len(points3d))
        knn1 = build_knn_app(points3d, order, k=1, leaf_size=4)
        nn = build_nn_app(points3d, order)
        w_knn = knn1.brute_force()
        w_nn = nn.brute_force()
        np.testing.assert_allclose(w_knn["knn_dist"][:, 0], w_nn["nn_dist"])


class TestNN:
    def test_subtree_bboxes_cover(self, nn_app, points3d):
        t = nn_app.tree
        # every point lies inside the root bbox
        assert (points3d >= t.arrays["bbox_min"][0] - 1e-12).all()
        assert (points3d <= t.arrays["bbox_max"][0] + 1e-12).all()

    def test_interpreter_matches_oracle(self, nn_app, oracles):
        ctx = nn_app.make_ctx()
        interp = RecursiveInterpreter(nn_app.spec, nn_app.tree, ctx)
        for p in range(nn_app.n_points):
            interp.run_point(p)
        nn_app.check(ctx.out, oracles["nn"])

    def test_nn_id_is_not_self(self, nn_app, compiled_apps, device4):
        L = TraversalLaunch(
            kernel=compiled_apps["nn"].autoropes, tree=nn_app.tree,
            ctx=nn_app.make_ctx(), n_points=nn_app.n_points, device=device4,
        )
        AutoropesExecutor(L).run()
        assert (L.ctx.out["nn_id"] != nn_app.queries.orig_ids).all()


class TestVP:
    def test_vp_uses_true_distances(self, vp_app, oracles):
        """VP results are real (not squared) distances."""
        want = oracles["vp"]
        assert want["nn_dist"].max() < 2.0  # unit cube diameter ~ 1.7

    def test_interpreter_matches_oracle(self, vp_app, oracles):
        ctx = vp_app.make_ctx()
        interp = RecursiveInterpreter(vp_app.spec, vp_app.tree, ctx)
        for p in range(vp_app.n_points):
            interp.run_point(p)
        vp_app.check(ctx.out, oracles["vp"])

    def test_vp_and_nn_agree(self, vp_app, nn_app):
        """Two different metric trees, same nearest neighbors."""
        d_vp = vp_app.brute_force()["nn_dist"]
        d_nn = np.sqrt(nn_app.brute_force()["nn_dist"])
        np.testing.assert_allclose(d_vp, d_nn, rtol=1e-9)


class TestBarnesHut:
    def test_oracle_matches_interpreter(self, bh_app, oracles):
        ctx = bh_app.make_ctx()
        interp = RecursiveInterpreter(bh_app.spec, bh_app.tree, ctx)
        for p in range(bh_app.n_points):
            interp.run_point(p)
        bh_app.check(ctx.out, oracles["bh"])

    def test_physics_close_to_direct_sum(self, bh_app):
        bodies_pos = np.empty_like(bh_app.queries.coords)
        # brute_force is the algorithmic oracle; exact_forces the physics
        got = bh_app.brute_force()["acc"]
        bodies = plummer_bodies(n=180, seed=104)
        exact = exact_forces(
            bh_app.queries, bodies.pos, bodies.mass, bh_app.params["eps_sq"]
        )["acc"]
        rel = np.linalg.norm(got - exact, axis=1) / np.maximum(
            np.linalg.norm(exact, axis=1), 1e-12
        )
        assert np.median(rel) < 0.05

    def test_smaller_theta_is_more_accurate(self):
        bodies = plummer_bodies(n=150, seed=7)
        order = morton_order(bodies.pos)

        def median_err(theta):
            app = build_barneshut_app(bodies, order, theta=theta, leaf_size=2)
            got = app.brute_force()["acc"]
            exact = exact_forces(
                app.queries, bodies.pos, bodies.mass, app.params["eps_sq"]
            )["acc"]
            rel = np.linalg.norm(got - exact, axis=1) / np.maximum(
                np.linalg.norm(exact, axis=1), 1e-12
            )
            return np.median(rel)

        assert median_err(0.25) < median_err(1.0)

    def test_momentum_conservation_direct_sum(self):
        """Pairwise forces cancel in the exact sum (sanity of the force
        law implementation)."""
        bodies = plummer_bodies(n=60, seed=8)
        q = QuerySet(coords=bodies.pos, orig_ids=np.arange(60))
        acc = exact_forces(q, bodies.pos, bodies.mass, 1e-4)["acc"]
        total = (acc * bodies.mass[:, None]).sum(axis=0)
        np.testing.assert_allclose(total, 0.0, atol=1e-12)


class TestOrderIndependence:
    """Sorted and shuffled query orders give the same per-point results
    (after aligning by original id)."""

    def test_pc_order_independent(self, points3d):
        n = len(points3d)
        a = build_pointcorr_app(points3d, morton_order(points3d), radius=0.25,
                                leaf_size=4)
        b = build_pointcorr_app(points3d, shuffled_order(n, 3), radius=0.25,
                                leaf_size=4)
        ca, cb = a.brute_force()["count"], b.brute_force()["count"]
        by_id_a = np.empty(n, dtype=int)
        by_id_a[a.queries.orig_ids] = ca
        by_id_b = np.empty(n, dtype=int)
        by_id_b[b.queries.orig_ids] = cb
        np.testing.assert_array_equal(by_id_a, by_id_b)
