"""CLI driver tests (python -m repro.harness)."""

import pathlib

import pytest

from repro.harness.__main__ import main


class TestCli:
    def test_table1_subset(self, capsys):
        assert main(["table1", "--scale", "tiny", "--bench", "pc"]) == 0
        out = capsys.readouterr().out
        assert "Point Correlation" in out
        assert "done in" in out

    def test_table2_subset(self, capsys):
        assert main(["table2", "--scale", "tiny", "--bench", "pc"]) == 0
        out = capsys.readouterr().out
        assert "Sorted" in out

    def test_fig10_subset(self, capsys):
        assert main(["fig10", "--scale", "tiny", "--bench", "pc"]) == 0
        out = capsys.readouterr().out
        assert "Figure 10" in out and "crossover" in out

    def test_fig11_subset(self, capsys):
        assert main(["fig11", "--scale", "tiny", "--bench", "pc"]) == 0
        assert "Figure 11" in capsys.readouterr().out

    def test_bad_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["tableX"])

    def test_bad_scale_rejected(self):
        with pytest.raises(SystemExit):
            main(["table1", "--scale", "galactic"])

    def test_all_writes_report(self, tmp_path, capsys, monkeypatch):
        """`all` writes the report file (restricted matrix for speed)."""
        from unittest import mock

        restricted = {"pc": ("random",)}
        out = tmp_path / "EXP.md"
        with mock.patch.dict(
            "repro.harness.config.BENCHMARKS", restricted, clear=True
        ), mock.patch("repro.harness.table1.BENCHMARKS", restricted), mock.patch(
            "repro.harness.table2.BENCHMARKS", restricted
        ), mock.patch(
            "repro.harness.figures.BENCHMARKS", restricted
        ):
            assert main(["all", "--scale", "tiny", "--out", str(out)]) == 0
        text = out.read_text()
        assert "# EXPERIMENTS" in text
        assert "Table 2 (measured)" in text
