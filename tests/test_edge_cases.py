"""Edge-case tests across modules: degenerate devices, disabled L2,
context isolation, tiny inputs."""

import dataclasses

import numpy as np
import pytest

from repro.gpusim.device import small_test_device
from repro.gpusim.executors import (
    AutoropesExecutor,
    LockstepExecutor,
    TraversalLaunch,
)


def _launch(app, kernel, device, **kw):
    return TraversalLaunch(
        kernel=kernel,
        tree=app.tree,
        ctx=app.make_ctx(),
        n_points=app.n_points,
        device=device,
        **kw,
    )


class TestDegenerateDevices:
    def test_warp_size_one(self, pc_app, compiled_apps, oracles):
        """1-wide warps: lockstep degenerates to per-thread traversal."""
        dev = small_test_device(warp_size=1)
        L = _launch(pc_app, compiled_apps["pc"].lockstep, dev)
        res = LockstepExecutor(L).run()
        pc_app.check(L.ctx.out, oracles["pc"])
        np.testing.assert_allclose(res.work_expansion_per_warp(), 1.0)

    def test_warp_size_two_guided(self, knn_app, compiled_apps, oracles):
        dev = small_test_device(warp_size=2)
        L = _launch(knn_app, compiled_apps["knn"].lockstep, dev)
        LockstepExecutor(L).run()
        knn_app.check(L.ctx.out, oracles["knn"])

    def test_tiny_block_device(self, pc_app, compiled_apps, oracles):
        """Devices whose max block is below the default 256 threads."""
        dev = dataclasses.replace(
            small_test_device(warp_size=4), max_threads_per_block=8
        ).validate()
        L = _launch(pc_app, compiled_apps["pc"].autoropes, dev)
        assert L.launch.block_size == 8
        AutoropesExecutor(L).run()
        pc_app.check(L.ctx.out, oracles["pc"])

    def test_single_sm(self, pc_app, compiled_apps, oracles):
        dev = small_test_device(warp_size=4, num_sms=1)
        L = _launch(pc_app, compiled_apps["pc"].lockstep, dev)
        res = LockstepExecutor(L).run()
        pc_app.check(L.ctx.out, oracles["pc"])
        assert res.time_ms > 0


class TestL2Disabled:
    def test_results_unchanged_costs_higher(self, pc_app, compiled_apps,
                                            oracles, device4):
        Lon = _launch(pc_app, compiled_apps["pc"].lockstep, device4)
        on = LockstepExecutor(Lon).run()
        pc_app.check(Lon.ctx.out, oracles["pc"])
        Loff = _launch(
            pc_app, compiled_apps["pc"].lockstep, device4, l2_enabled=False
        )
        off = LockstepExecutor(Loff).run()
        pc_app.check(Loff.ctx.out, oracles["pc"])
        assert off.stats.l2_hit_transactions == 0
        assert off.stats.dram_bytes >= on.stats.dram_bytes
        assert off.timing.memory_cycles >= on.timing.memory_cycles


class TestContextIsolation:
    def test_make_ctx_gives_fresh_out(self, pc_app):
        a, b = pc_app.make_ctx(), pc_app.make_ctx()
        a.out["count"][:] = 99
        assert (b.out["count"] == 0).all()

    def test_make_ctx_gives_fresh_params(self, pc_app):
        a, b = pc_app.make_ctx(), pc_app.make_ctx()
        a.params["radius_sq"] = -1.0
        assert b.params["radius_sq"] > 0

    def test_repeat_launches_deterministic(self, pc_app, compiled_apps, device4):
        def run():
            L = _launch(pc_app, compiled_apps["pc"].lockstep, device4)
            return LockstepExecutor(L).run()

        r1, r2 = run(), run()
        assert r1.time_ms == r2.time_ms
        assert r1.stats.global_transactions == r2.stats.global_transactions
        np.testing.assert_array_equal(r1.nodes_per_warp, r2.nodes_per_warp)


class TestStackDepthCap:
    def test_shallow_cap_raises(self, pc_app, compiled_apps, device4):
        from repro.gpusim.stack import StackOverflowError

        L = _launch(
            pc_app, compiled_apps["pc"].autoropes, device4, max_stack_depth=1
        )
        with pytest.raises(StackOverflowError):
            AutoropesExecutor(L).run()
