"""Per-step trace tests (repro.gpusim.trace)."""

import numpy as np
import pytest

from repro.gpusim.executors import (
    AutoropesExecutor,
    LockstepExecutor,
    TraversalLaunch,
)
from repro.gpusim.trace import StepTrace


def _launch(app, kernel, device, **kw):
    return TraversalLaunch(
        kernel=kernel,
        tree=app.tree,
        ctx=app.make_ctx(),
        n_points=app.n_points,
        device=device,
        **kw,
    )


class TestStepTrace:
    def test_record_and_arrays(self):
        tr = StepTrace()
        tr.record(4, 12, 7)
        tr.record(2, 3, 1)
        arrays = tr.as_arrays()
        np.testing.assert_array_equal(arrays["active_warps"], [4, 2])
        np.testing.assert_array_equal(arrays["live_lanes"], [12, 3])
        np.testing.assert_array_equal(arrays["transactions"], [7, 1])
        assert len(tr) == 2

    def test_lane_utilization(self):
        tr = StepTrace()
        tr.record(2, 8, 0)  # 2 warps x 4 lanes, all live
        tr.record(2, 4, 0)  # half live
        tr.record(0, 0, 0)  # drained
        util = tr.lane_utilization(warp_size=4)
        np.testing.assert_allclose(util, [1.0, 0.5, 0.0])

    def test_tail_fraction(self):
        tr = StepTrace()
        for _ in range(8):
            tr.record(100, 100, 0)
        for _ in range(2):
            tr.record(3, 3, 0)
        assert tr.tail_fraction(threshold=0.1) == pytest.approx(0.2)

    def test_empty_trace(self):
        tr = StepTrace()
        assert tr.tail_fraction() == 0.0
        assert len(tr.lane_utilization(4)) == 0


class TestExecutorTraces:
    def test_off_by_default(self, pc_app, compiled_apps, device4):
        res = AutoropesExecutor(
            _launch(pc_app, compiled_apps["pc"].autoropes, device4)
        ).run()
        assert res.trace is None

    def test_autoropes_trace_consistent(self, pc_app, compiled_apps, device4):
        res = AutoropesExecutor(
            _launch(pc_app, compiled_apps["pc"].autoropes, device4, trace=True)
        ).run()
        tr = res.trace
        assert len(tr) == res.stats.steps
        assert sum(tr.live_lanes) == res.stats.node_visits
        assert max(tr.active_warps) <= pc_app.n_points // device4.warp_size + 1

    def test_lockstep_trace_consistent(self, pc_app, compiled_apps, device4):
        res = LockstepExecutor(
            _launch(pc_app, compiled_apps["pc"].lockstep, device4, trace=True)
        ).run()
        tr = res.trace
        assert len(tr) == res.stats.steps
        assert sum(tr.active_warps) == res.stats.warp_node_visits
        assert sum(tr.live_lanes) == res.stats.node_visits

    def test_utilization_decays_over_traversal(self, pc_app, compiled_apps,
                                               device4):
        """Masks thin out as the warp descends: late-step utilization
        cannot beat the launch step."""
        res = LockstepExecutor(
            _launch(pc_app, compiled_apps["pc"].lockstep, device4, trace=True)
        ).run()
        util = res.trace.lane_utilization(device4.warp_size)
        assert util[0] >= util[-1]
        assert util.max() <= 1.0 + 1e-9
