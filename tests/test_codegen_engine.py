"""Differential and cache tests for the codegen engine.

``TraversalLaunch(engine="codegen")`` emits standalone NumPy source for
the whole per-step body through the transformation-pass pipeline
(:mod:`repro.core.passes`), ``exec``-compiles it once, and memoizes the
function.  Like the compiled engine before it, speed without
equivalence is a bug: everything the simulator measures must be
*bit-identical* to the interp baseline — stats, per-point/per-warp
lengths, step traces, visit logs, app outputs, and even the partial
stats left behind by a chaos abort.

Also covers the generated-function caches (the per-kernel memo and the
plan cache's service-owned tier with eviction + plan-epoch
invalidation), emission metadata, the pass registry, and the frontier
compaction regression tests for the recursive baselines.
"""

import numpy as np
import pytest

import repro.core.passes as passes
from repro.core.passes import (
    PASS_REGISTRY,
    EmitPass,
    Property,
    facts_for,
    step_loop_for,
)
from repro.core.plancache import PlanCache
from repro.gpusim.executors import (
    AutoropesExecutor,
    LockstepExecutor,
    RecursiveExecutor,
    StaticRopesExecutor,
    TraversalLaunch,
)
from repro.gpusim.faults import BatchFaultPlan
from repro.gpusim.stack import CorruptedRopeStack
from repro.points.datasets import dataset_by_name
from repro.service import ServiceConfig, TraversalService

APP_NAMES = ("pc", "knn", "nn", "vp", "bh")


def _launch(app, kernel, device, engine, **kw):
    return TraversalLaunch(
        kernel=kernel,
        tree=app.tree,
        ctx=app.make_ctx(),
        n_points=app.n_points,
        device=device,
        record_visits=True,
        engine=engine,
        **kw,
    )


def _run_pair(app, kernel, exec_factory, device, **kw):
    """Run interp and codegen engines on fresh launches; return both."""
    Li = _launch(app, kernel, device, "interp", **kw)
    ri = exec_factory(Li).run()
    Lg = _launch(app, kernel, device, "codegen", **kw)
    rg = exec_factory(Lg).run()
    return (Li, ri), (Lg, rg)


def _assert_identical(name, pair_i, pair_g):
    Li, ri = pair_i
    Lg, rg = pair_g
    di, dg = ri.stats.as_dict(), rg.stats.as_dict()
    diff = {k: (di[k], dg[k]) for k in di if di[k] != dg[k]}
    assert not diff, f"{name}: codegen engine changed simulated stats: {diff}"
    np.testing.assert_array_equal(
        ri.nodes_per_point, rg.nodes_per_point, err_msg=name
    )
    np.testing.assert_array_equal(
        ri.nodes_per_warp, rg.nodes_per_warp, err_msg=name
    )
    np.testing.assert_array_equal(
        ri.longest_member_per_warp, rg.longest_member_per_warp, err_msg=name
    )
    assert ri.timing.time_ms == rg.timing.time_ms, name
    assert len(ri.visits) == len(rg.visits), name
    for (pi, ni), (pg, ng) in zip(ri.visits, rg.visits):
        np.testing.assert_array_equal(pi, pg, err_msg=name)
        np.testing.assert_array_equal(ni, ng, err_msg=name)
    for key in Li.ctx.out:
        np.testing.assert_array_equal(
            Li.ctx.out[key], Lg.ctx.out[key], err_msg=f"{name}:{key}"
        )


class TestCodegenEquivalence:
    @pytest.mark.parametrize("name", APP_NAMES)
    def test_lockstep_identical(self, name, all_apps, compiled_apps, device4):
        app = all_apps[name]
        pi, pg = _run_pair(
            app, compiled_apps[name].lockstep, LockstepExecutor, device4
        )
        _assert_identical(f"codegen/lockstep/{name}", pi, pg)

    @pytest.mark.parametrize("name", APP_NAMES)
    def test_autoropes_identical(self, name, all_apps, compiled_apps, device4):
        app = all_apps[name]
        pi, pg = _run_pair(
            app, compiled_apps[name].autoropes, AutoropesExecutor, device4
        )
        _assert_identical(f"codegen/autoropes/{name}", pi, pg)

    @pytest.mark.parametrize("name", ("pc", "knn"))
    def test_lockstep_warp32(self, name, all_apps, compiled_apps, device32):
        app = all_apps[name]
        pi, pg = _run_pair(
            app, compiled_apps[name].lockstep, LockstepExecutor, device32
        )
        _assert_identical(f"codegen/lockstep32/{name}", pi, pg)

    @pytest.mark.parametrize("name", ("pc", "bh"))
    def test_compaction_invisible(self, name, all_apps, compiled_apps,
                                  device4):
        """Codegen emits the compaction path only when the plan enables
        it; either way the results must not move."""
        app = all_apps[name]
        kernel = compiled_apps[name].lockstep
        Lo = _launch(app, kernel, device4, "codegen", compact_threshold=0.0)
        ro = LockstepExecutor(Lo).run()
        Lc = _launch(app, kernel, device4, "codegen", compact_threshold=0.9)
        rc = LockstepExecutor(Lc).run()
        _assert_identical(f"codegen/compact/{name}", (Lo, ro), (Lc, rc))

    @pytest.mark.parametrize("name", APP_NAMES)
    def test_traces_identical(self, name, all_apps, compiled_apps, device4):
        app = all_apps[name]
        pi, pg = _run_pair(
            app, compiled_apps[name].lockstep, LockstepExecutor, device4,
            trace=True,
        )
        (_, ri), (_, rg) = pi, pg
        ai, ag = ri.trace.as_arrays(), rg.trace.as_arrays()
        assert len(ri.trace) == len(rg.trace), name
        for key in ai:
            np.testing.assert_array_equal(
                ai[key], ag[key], err_msg=f"codegen/trace/{name}:{key}"
            )

    def test_validate_path_identical(self, pc_app, compiled_apps, device4):
        pi, pg = _run_pair(
            pc_app, compiled_apps["pc"].autoropes, AutoropesExecutor, device4,
            validate=True,
        )
        _assert_identical("codegen/validate/pc", pi, pg)

    @pytest.mark.parametrize("kind", ("autoropes", "lockstep"))
    def test_chaos_abort_identical(self, kind, pc_app, compiled_apps,
                                   device4):
        """A corrupted stack aborts at the same step with the same
        partial stats on both engines — the generated validation guard
        must not outrun (or lag) the interpreter's."""
        kernel = getattr(compiled_apps["pc"], kind)
        cls = LockstepExecutor if kind == "lockstep" else AutoropesExecutor
        partials = {}
        for engine in ("interp", "codegen"):
            L = _launch(
                pc_app, kernel, device4, engine,
                fault_plan=BatchFaultPlan(corrupt_stack_at=2),
            )
            with pytest.raises(CorruptedRopeStack):
                cls(L).run()
            partials[engine] = L.stats.as_dict()
        assert partials["interp"] == partials["codegen"]

    def test_static_ropes_falls_back(self, pc_app, compiled_apps, device4):
        """Static ropes has no generated loop; engine="codegen" must
        degrade to the compiled walker, not crash or drift."""
        assert StaticRopesExecutor._codegen_supported is False
        pi, pg = _run_pair(
            pc_app, compiled_apps["pc"].autoropes, StaticRopesExecutor,
            device4,
        )
        _assert_identical("codegen/ropes/pc", pi, pg)

    def test_recursive_masked_identical(self, pc_app, compiled_apps, device4):
        pi, pg = _run_pair(
            pc_app, compiled_apps["pc"].lockstep,
            lambda L: RecursiveExecutor(L, masking=True), device4,
        )
        _assert_identical("codegen/rec-masked/pc", pi, pg)

    def test_recursive_unmasked_identical(self, pc_app, compiled_apps,
                                          device4):
        pi, pg = _run_pair(
            pc_app, compiled_apps["pc"].autoropes,
            lambda L: RecursiveExecutor(L, masking=False), device4,
        )
        _assert_identical("codegen/rec-unmasked/pc", pi, pg)


class TestRecursiveCompaction:
    """Frontier compaction for the recursive baselines (the Table 1
    affordability item): the recursive executors inherit the lockstep
    frontier machinery, and their frame accounting addresses frames by
    *original* warp id, so gathering rows must not move any number."""

    @pytest.mark.parametrize("masking", (True, False))
    def test_compaction_invisible(self, masking, pc_app, compiled_apps,
                                  device4):
        kernel = (compiled_apps["pc"].lockstep if masking
                  else compiled_apps["pc"].autoropes)
        Lo = _launch(pc_app, kernel, device4, "compiled",
                     compact_threshold=0.0)
        ro = RecursiveExecutor(Lo, masking=masking).run()
        Lc = _launch(pc_app, kernel, device4, "compiled",
                     compact_threshold=0.9)
        rc = RecursiveExecutor(Lc, masking=masking).run()
        _assert_identical(f"rec-compact/masking={masking}",
                          (Lo, ro), (Lc, rc))
        assert ro.stats.as_dict()["recursive_calls"] > 0

    def test_compaction_actually_fires(self, pc_app, compiled_apps, device4,
                                       monkeypatch):
        L = _launch(pc_app, compiled_apps["pc"].lockstep, device4,
                    "compiled", compact_threshold=0.9)
        ex = RecursiveExecutor(L, masking=True)
        compactions = []
        real = type(ex)._compact_rows

        def spy(self, sel):
            compactions.append(int(np.asarray(sel).size))
            return real(self, sel)

        monkeypatch.setattr(type(ex), "_compact_rows", spy)
        ex.run()
        assert compactions, "recursive pc traversal never compacted"


class TestCodegenEmission:
    def test_memoized_on_kernel(self, pc_app, compiled_apps, device4):
        kernel = compiled_apps["pc"].lockstep
        ex1 = LockstepExecutor(
            _launch(pc_app, kernel, device4, "codegen"))
        ex2 = LockstepExecutor(
            _launch(pc_app, kernel, device4, "codegen"))
        fn1 = step_loop_for(ex1, "lockstep")
        fn2 = step_loop_for(ex2, "lockstep")
        assert fn1 is fn2, "same facts must reuse the generated function"

    def test_distinct_facts_distinct_functions(self, pc_app, compiled_apps,
                                               device4):
        kernel = compiled_apps["pc"].lockstep
        plain = LockstepExecutor(_launch(pc_app, kernel, device4, "codegen"))
        traced = LockstepExecutor(
            _launch(pc_app, kernel, device4, "codegen", trace=True))
        f_plain = facts_for(plain, "lockstep")
        f_traced = facts_for(traced, "lockstep")
        assert f_plain.digest() != f_traced.digest()
        assert step_loop_for(plain, "lockstep") is not step_loop_for(
            traced, "lockstep")

    def test_emission_metadata(self, pc_app, compiled_apps, device4):
        ex = LockstepExecutor(
            _launch(pc_app, compiled_apps["pc"].lockstep, device4, "codegen"))
        fn = step_loop_for(ex, "lockstep")
        assert "def step_loop(" in fn.__source__
        assert fn.__facts__ == facts_for(ex, "lockstep")
        assert "EmitLockstepLoop" in fn.__passes__
        assert fn.__emit_ms__ >= 0.0

    def test_dump_sink_receives_source(self, pc_app, compiled_apps, device4,
                                       monkeypatch):
        dumped = {}
        monkeypatch.setattr(
            passes, "dump_sink", lambda name, src: dumped.update({name: src}))
        ex = AutoropesExecutor(
            _launch(pc_app, compiled_apps["pc"].autoropes, device4,
                    "codegen"))
        kernel = ex.kernel
        # Force a fresh emit even if an identical-facts function is
        # already memoized from an earlier test.
        kernel.__dict__.pop("_codegen_fns", None)
        step_loop_for(ex, "autoropes")
        assert len(dumped) == 1
        (name, src), = dumped.items()
        assert name.endswith(".autoropes")
        assert "def step_loop(" in src


class TestPassRegistry:
    def test_expected_pipeline_order(self):
        names = list(PASS_REGISTRY)
        # Analysis/lowering passes run before the loop emitters.
        assert names.index("LowerProgram") < names.index("EmitLockstepLoop")
        assert names.index("ResolveBranches") < names.index("EmitLockstepLoop")
        assert names.index("PlanFieldCharges") < names.index(
            "EmitAutoropesLoop")
        for required in (
            "LowerProgram", "ResolveBranches", "PlanFieldCharges",
            "EmitLockstepLoop", "EmitAutoropesLoop",
            "RenderRecursivePseudocode", "RenderIterativePseudocode",
            "EmitScalarPython",
        ):
            assert required in names
            assert issubclass(PASS_REGISTRY[required], EmitPass)

    def test_property_type_checked(self):
        class P(EmitPass):
            fuse = Property("fuse consecutive loads", dtype=bool,
                            default=True)

        p = P()
        assert p.fuse is True
        p.fuse = False
        assert p.fuse is False
        with pytest.raises(TypeError):
            p.fuse = "yes"
        assert "fuse" in P.properties()


class TestPlanCacheCodegen:
    """The service-owned tier: generated functions live and die with
    the plan entry they specialize."""

    def _emit_args(self, pc_app, compiled_apps, device4):
        ex = LockstepExecutor(
            _launch(pc_app, compiled_apps["pc"].lockstep, device4,
                    "codegen"))
        facts = facts_for(ex, "lockstep")
        return ex.kernel, facts

    def test_miss_then_hit(self, pc_app, compiled_apps, device4):
        kernel, facts = self._emit_args(pc_app, compiled_apps, device4)
        cache = PlanCache()
        events = []
        cache.on_event = events.append
        key = ("plan-a", 0)
        fn1 = cache.codegen_get_or_emit(key, facts.digest(), kernel, facts)
        fn2 = cache.codegen_get_or_emit(key, facts.digest(), kernel, facts)
        assert fn1 is fn2
        s = cache.stats()
        assert (s.codegen_misses, s.codegen_hits, s.codegen_size) == (1, 1, 1)
        assert s.codegen_emit_ms > 0.0
        assert events == ["codegen_miss", "codegen_hit"]

    def test_epoch_bump_forces_reemit(self, pc_app, compiled_apps, device4):
        kernel, facts = self._emit_args(pc_app, compiled_apps, device4)
        cache = PlanCache()
        fn0 = cache.codegen_get_or_emit(
            ("plan-a", 0), facts.digest(), kernel, facts)
        fn1 = cache.codegen_get_or_emit(
            ("plan-a", 1), facts.digest(), kernel, facts)
        assert fn0 is not fn1, "an epoch bump must not resolve stale code"
        s = cache.stats()
        assert (s.codegen_misses, s.codegen_hits, s.codegen_size) == (2, 0, 2)

    def test_invalidate_drops_generated_functions(self, pc_app,
                                                  compiled_apps, device4):
        kernel, facts = self._emit_args(pc_app, compiled_apps, device4)
        cache = PlanCache()
        cache.get_or_compile("plan-a", pc_app.spec)
        cache.codegen_get_or_emit(("plan-a", 0), facts.digest(), kernel, facts)
        cache.codegen_get_or_emit(("plan-b", 0), facts.digest(), kernel, facts)
        assert cache.stats().codegen_size == 2
        assert cache.invalidate("plan-a")
        # Only plan-a's bucket goes; plan-b's function survives.
        assert cache.stats().codegen_size == 1
        cache.codegen_get_or_emit(("plan-a", 0), facts.digest(), kernel, facts)
        assert cache.stats().codegen_misses == 3

    def test_clear_empties_codegen_tier(self, pc_app, compiled_apps, device4):
        kernel, facts = self._emit_args(pc_app, compiled_apps, device4)
        cache = PlanCache()
        cache.codegen_get_or_emit(("plan-a", 0), facts.digest(), kernel, facts)
        cache.clear()
        assert cache.stats().codegen_size == 0

    def test_launch_delegates_to_service_cache(self, pc_app, compiled_apps,
                                               device4):
        """With a cache on the launch, the per-kernel memo must not
        shadow it (eviction would then be ineffective)."""
        kernel = compiled_apps["pc"].lockstep
        cache = PlanCache()
        before = dict(kernel.__dict__.get("_codegen_fns", {}))
        L = _launch(pc_app, kernel, device4, "codegen")
        L.codegen_cache = cache
        L.codegen_key = ("plan-a", 0)
        LockstepExecutor(L).run()
        assert cache.stats().codegen_misses == 1
        assert kernel.__dict__.get("_codegen_fns", {}) == before


class TestServiceCodegen:
    """End-to-end through the query service: engine="codegen" sessions
    answer correctly and their generated functions ride the plan
    cache's eviction and epoch-bump paths."""

    @pytest.fixture(scope="class")
    def geocity(self):
        return dataset_by_name("geocity", 512, seed=3).points

    def _queries(self, data, n, seed=7):
        rng = np.random.default_rng(seed)
        q = data[rng.permutation(len(data))][:n]
        return q + rng.normal(scale=0.01, size=q.shape)

    def test_register_validates_engine(self, geocity):
        svc = TraversalService(ServiceConfig())
        svc.register("ok", app="pc", data=geocity, engine="codegen",
                     radius=0.1, leaf_size=4)
        with pytest.raises(ValueError, match="engine"):
            svc.register("bad", app="pc", data=geocity, engine="jit",
                         radius=0.1, leaf_size=4)

    def test_results_match_oracle_and_cache_cycles(self, geocity):
        # memo_capacity=0: identical repeat queries must reach the GPU
        # path again, or the cache-hit assertions below are vacuous.
        svc = TraversalService(
            ServiceConfig(max_batch=64, backend="lockstep", memo_capacity=0))
        sess = svc.register("pc", app="pc", data=geocity, engine="codegen",
                            radius=0.1, leaf_size=4)
        queries = self._queries(geocity, 16)
        tickets = svc.query_many("pc", queries)
        got = np.array([t.result["count"] for t in tickets])
        np.testing.assert_array_equal(got, sess.oracle(queries)["count"])
        s = svc.plan_cache.stats()
        assert s.codegen_misses == 1 and s.codegen_size == 1
        # Second batch with identical facts: pure cache hit.
        svc.query_many("pc", queries)
        assert svc.plan_cache.stats().codegen_misses == 1
        assert svc.plan_cache.stats().codegen_hits >= 1
        # refresh_plan bumps the epoch and invalidates: the generated
        # function is dropped and the next batch re-emits.
        epoch = sess.plan_epoch
        svc.registry.refresh_plan("pc")
        assert sess.plan_epoch == epoch + 1
        assert svc.plan_cache.stats().codegen_size == 0
        tickets = svc.query_many("pc", queries)
        got = np.array([t.result["count"] for t in tickets])
        np.testing.assert_array_equal(got, sess.oracle(queries)["count"])
        s = svc.plan_cache.stats()
        assert s.codegen_misses == 2 and s.codegen_size == 1
