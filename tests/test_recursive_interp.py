"""Scalar recursive interpreter tests (the ground-truth oracle)."""

import numpy as np
import pytest

from repro.apps.base import QuerySet
from repro.core.ir import (
    ArgDecl,
    ChildRef,
    CondRef,
    EvalContext,
    If,
    Recurse,
    Return,
    Seq,
    TraversalSpec,
    Update,
    UpdateRef,
)
from repro.cpusim.recursive import RecursiveInterpreter, ReferenceRun
from repro.trees.node import FieldGroup, RawTree
from repro.trees.linearize import linearize_left_biased


@pytest.fixture
def tiny_tree():
    """Complete binary tree of depth 3 (7 nodes), already in DFS order."""
    left = np.array([1, 2, -1, -1, 5, -1, -1])
    right = np.array([4, 3, -1, -1, 6, -1, -1])
    raw = RawTree(
        child_names=("left", "right"),
        children={"left": left, "right": right},
        arrays={"val": np.arange(7, dtype=np.float64)},
        groups=(FieldGroup("hot", 8),),
    )
    return linearize_left_biased(raw)


def ctx_for(tree, n_pts=2):
    return EvalContext(
        tree=tree,
        points=QuerySet(coords=np.zeros((n_pts, 1)), orig_ids=np.arange(n_pts)),
        out={"log": [], "sum": np.zeros(n_pts)},
    )


def _never(ctx, node, pt, args):
    return np.zeros(len(node), dtype=bool)


def _log(ctx, node, pt, args):
    ctx.out["log"].append((int(pt[0]), int(node[0])))


class TestVisitOrder:
    def test_full_preorder(self, tiny_tree):
        spec = TraversalSpec(
            name="t",
            body=Seq(Recurse(ChildRef("left")), Recurse(ChildRef("right"))),
        )
        ctx = ctx_for(tiny_tree)
        visits = RecursiveInterpreter(spec, tiny_tree, ctx).run_point(0)
        np.testing.assert_array_equal(visits, np.arange(7))

    def test_right_first_order(self, tiny_tree):
        spec = TraversalSpec(
            name="t",
            body=Seq(Recurse(ChildRef("right")), Recurse(ChildRef("left"))),
        )
        ctx = ctx_for(tiny_tree)
        visits = RecursiveInterpreter(spec, tiny_tree, ctx).run_point(0)
        np.testing.assert_array_equal(visits, [0, 4, 6, 5, 1, 3, 2])

    def test_truncation_cuts_subtree(self, tiny_tree):
        def prune_node_1(ctx, node, pt, args):
            return node == 1

        spec = TraversalSpec(
            name="t",
            body=Seq(
                If(CondRef("p"), Return()),
                Recurse(ChildRef("left")),
                Recurse(ChildRef("right")),
            ),
            conditions={"p": prune_node_1},
        )
        ctx = ctx_for(tiny_tree)
        visits = RecursiveInterpreter(spec, tiny_tree, ctx).run_point(0)
        np.testing.assert_array_equal(visits, [0, 1, 4, 5, 6])

    def test_update_runs_per_visit(self, tiny_tree):
        spec = TraversalSpec(
            name="t",
            body=Seq(
                Update(UpdateRef("log")),
                Recurse(ChildRef("left")),
                Recurse(ChildRef("right")),
            ),
            updates={"log": _log},
        )
        ctx = ctx_for(tiny_tree)
        RecursiveInterpreter(spec, tiny_tree, ctx).run_point(1)
        assert [n for (p, n) in ctx.out["log"]] == list(range(7))
        assert all(p == 1 for (p, n) in ctx.out["log"])


class TestArgSemantics:
    def test_decl_rule_once_per_visit(self, tiny_tree):
        """dsq*0.5 per level: both children of a node see the same value
        (Fig. 9's dsq*0.25 semantics)."""
        seen = []

        def record(ctx, node, pt, args):
            seen.append((int(node[0]), float(args["d"][0])))

        spec = TraversalSpec(
            name="t",
            body=Seq(
                Update(UpdateRef("rec")),
                Recurse(ChildRef("left")),
                Recurse(ChildRef("right")),
            ),
            args=(ArgDecl("d", 8.0, update="halve"),),
            updates={"rec": record},
            arg_rules={"halve": lambda c, n, p, a: a["d"] * 0.5},
        )
        ctx = ctx_for(tiny_tree)
        RecursiveInterpreter(spec, tiny_tree, ctx).run_point(0)
        values = dict(seen)
        assert values[0] == 8.0
        assert values[1] == values[4] == 4.0
        assert values[2] == values[3] == values[5] == values[6] == 2.0

    def test_invariant_arg_constant(self, tiny_tree):
        seen = []

        def record(ctx, node, pt, args):
            seen.append(float(args["c"][0]))

        spec = TraversalSpec(
            name="t",
            body=Seq(
                Update(UpdateRef("rec")),
                Recurse(ChildRef("left")),
                Recurse(ChildRef("right")),
            ),
            args=(ArgDecl("c", 3.0),),
            updates={"rec": record},
        )
        ctx = ctx_for(tiny_tree)
        RecursiveInterpreter(spec, tiny_tree, ctx).run_point(0)
        assert set(seen) == {3.0}


class TestGuards:
    def test_max_visits_guard(self, tiny_tree):
        spec = TraversalSpec(
            name="t",
            body=Seq(Recurse(ChildRef("left")), Recurse(ChildRef("right"))),
        )
        interp = RecursiveInterpreter(spec, tiny_tree, ctx_for(tiny_tree), max_visits=3)
        with pytest.raises(RuntimeError, match="max_visits"):
            interp.run_point(0)


class TestReferenceRun:
    def test_stream_and_counts(self, tiny_tree):
        run = ReferenceRun(
            sequences=[np.array([0, 1]), np.array([0, 4, 5])],
            ctx=ctx_for(tiny_tree),
        )
        np.testing.assert_array_equal(run.visits_per_point, [2, 3])
        np.testing.assert_array_equal(
            run.stream_for_points(np.array([1, 0])), [0, 4, 5, 0, 1]
        )
        assert len(run.stream_for_points(np.array([], dtype=int))) == 0
