"""Serve mode: HTTP endpoints, Prometheus validity, graceful drain.

Most routing assertions go through :meth:`TraversalServer.respond`
directly (no sockets, deterministic); one test starts the real
threaded listener on an OS-assigned port and exercises every endpoint
over HTTP, and the chaos test asserts the acceptance criterion that
``/metrics`` stays valid Prometheus exposition text while faults fire.
"""

import json
import urllib.request

import numpy as np
import pytest

from repro.gpusim.faults import ChaosConfig
from repro.service.serve import (
    METRICS_CONTENT_TYPE,
    SyntheticLoadDriver,
    TraversalServer,
    run_serve,
)
from repro.service.service import ServiceConfig, TraversalService
from repro.telemetry import SLOConfig, TelemetryConfig

def assert_valid_prometheus(text: str) -> None:
    """Strict structural validation of the text exposition format.

    Delegates to :mod:`tests.prometheus_validator` (label escaping,
    HELP/TYPE ordering, family contiguity, exemplar syntax, histogram
    bucket structure) — the same validator CI pipes live scrapes
    through.  Kept here because test_fleet.py imports it by this name.
    """
    from tests.prometheus_validator import validate

    validate(text)


def _service(**kw) -> TraversalService:
    defaults = dict(
        telemetry=TelemetryConfig(enabled=True, profile_sample_rate=1),
        memo_capacity=0,
        max_batch=16,
    )
    defaults.update(kw)
    svc = TraversalService(ServiceConfig(**defaults))
    rng = np.random.default_rng(11)
    svc.register("pc", "pc", rng.random((256, 2)), radius=0.1)
    svc.register("knn", "knn", rng.random((256, 2)), k=4)
    return svc


def _drive(svc: TraversalService, n: int = 48, seed: int = 12) -> None:
    rng = np.random.default_rng(seed)
    for name in ("pc", "knn"):
        svc.query_many(name, rng.random((n, 2)), now=svc.now_ms + 1.0)


class TestRouting:
    def test_unknown_route_404(self):
        server = TraversalServer(_service())
        status, ctype, body = server.respond("/nope")
        assert status == 404
        payload = json.loads(body)
        assert "/metrics" in payload["routes"]

    def test_trailing_slash_and_query_string(self):
        server = TraversalServer(_service())
        assert server.respond("/healthz/")[0] == 200
        assert server.respond("/tracez?limit=abc")[0] == 400
        assert server.respond("/tracez?limit=-1")[0] == 400

    def test_metrics_disabled_503(self):
        svc = TraversalService(ServiceConfig())  # telemetry off
        server = TraversalServer(svc)
        status, _, _ = server.respond("/metrics")
        assert status == 503
        status, _, body = server.respond("/profilez")
        assert status == 200
        assert json.loads(body)["enabled"] is False

    def test_metrics_valid_prometheus(self):
        svc = _service()
        _drive(svc)
        server = TraversalServer(svc)
        status, ctype, body = server.respond("/metrics")
        assert status == 200
        assert ctype == METRICS_CONTENT_TYPE
        text = body.decode()
        assert_valid_prometheus(text)
        assert "service_queries_total" in text
        assert "profile_hot_op_cycles" in text

    def test_statsz_strict_json(self):
        svc = _service(slo=SLOConfig(latency_ms=5.0, error_rate=0.1))
        _drive(svc)
        server = TraversalServer(svc)
        status, _, body = server.respond("/statsz")
        assert status == 200
        payload = json.loads(body)
        assert payload["queries_submitted"] == 96
        assert "pc" in payload["slo"]
        # Strict: a standards-compliant parser must accept it.
        json.loads(body.decode(), parse_constant=_reject_constants)

    def test_profilez_ranks_hot_ops(self):
        svc = _service()
        _drive(svc)
        server = TraversalServer(svc)
        status, _, body = server.respond("/profilez")
        payload = json.loads(body)
        assert payload["enabled"] is True
        assert payload["launches_sampled"] > 0
        for name, sess in payload["sessions"].items():
            ops = sess["ops"]
            assert ops, name
            cycles = [o["cycles"] for o in ops]
            assert cycles == sorted(cycles, reverse=True), name

    def test_tracez_limit(self):
        svc = _service()
        _drive(svc)
        server = TraversalServer(svc)
        payload = json.loads(server.respond("/tracez?limit=3")[2])
        assert payload["enabled"] is True
        assert len(payload["spans"]) == 3
        assert payload["total_spans"] > 3

    def test_healthz_degrades_on_slo_burn(self):
        svc = _service(slo=SLOConfig(latency_ms=1e-6, min_events=5))
        _drive(svc)
        server = TraversalServer(svc)
        status, _, body = server.respond("/healthz")
        assert status == 503
        payload = json.loads(body)
        assert payload["status"] == "degraded"
        assert payload["checks"]["slo"]["fast_burns"]


def _reject_constants(name):
    raise ValueError(f"non-strict JSON constant {name!r}")


class TestChaos:
    def test_metrics_valid_under_chaos(self):
        """Acceptance: with chaos armed, /metrics and /healthz keep
        answering with parseable payloads while faults, retries, and
        breaker trips land in the metrics themselves."""
        svc = _service(
            chaos=ChaosConfig(
                seed=1337,
                p_backend_error=0.5,
                p_corrupt_stack=0.3,
                p_stuck_warp=0.2,
            ),
            slo=SLOConfig(latency_ms=5.0, error_rate=0.05, min_events=5),
        )
        server = TraversalServer(svc)
        rng = np.random.default_rng(13)
        for i in range(6):
            for name in ("pc", "knn"):
                svc.query_many(
                    name, rng.random((24, 2)), now=svc.now_ms + 1.0
                )
        status, _, body = server.respond("/metrics")
        assert status == 200
        text = body.decode()
        assert_valid_prometheus(text)
        assert "service_faults_injected_total" in text
        status, _, body = server.respond("/healthz")
        assert status in (200, 503)
        json.loads(body)
        status, _, body = server.respond("/statsz")
        assert status == 200
        json.loads(body)


class TestLoadDriver:
    def test_tick_is_deterministic_and_advances_clock(self):
        svc_a, svc_b = _service(), _service()
        for svc in (svc_a, svc_b):
            server = TraversalServer(svc)
            driver = SyntheticLoadDriver(
                svc, server.lock, seed=21, tick_ms=2.0, queries_per_tick=16
            )
            for _ in range(5):
                driver.tick()
        assert svc_a.now_ms == svc_b.now_ms == 10.0
        assert svc_a._submitted == svc_b._submitted
        sa, sb = svc_a.stats(), svc_b.stats()
        assert sa.total_exec_ms == sb.total_exec_ms

    def test_validation(self):
        svc = _service()
        server = TraversalServer(svc)
        with pytest.raises(ValueError):
            SyntheticLoadDriver(svc, server.lock, tick_ms=0.0)
        with pytest.raises(ValueError):
            SyntheticLoadDriver(svc, server.lock, queries_per_tick=-1)


class TestHTTPServer:
    def test_end_to_end_over_http(self):
        svc = _service()
        _drive(svc)
        server = TraversalServer(svc, port=0)
        host, port = server.start()
        try:
            base = f"http://{host}:{port}"
            with urllib.request.urlopen(f"{base}/healthz", timeout=10) as r:
                assert r.status == 200
                assert json.loads(r.read())["ok"] is True
            with urllib.request.urlopen(f"{base}/metrics", timeout=10) as r:
                assert r.headers["Content-Type"] == METRICS_CONTENT_TYPE
                assert_valid_prometheus(r.read().decode())
            with urllib.request.urlopen(f"{base}/profilez", timeout=10) as r:
                assert json.loads(r.read())["enabled"] is True
            with pytest.raises(urllib.error.HTTPError) as exc:
                urllib.request.urlopen(f"{base}/bogus", timeout=10)
            assert exc.value.code == 404
        finally:
            server.shutdown()

    def test_shutdown_drains_pending(self):
        svc = _service(max_batch=1024, max_wait_ms=1e9)
        rng = np.random.default_rng(31)
        for i in range(10):
            svc.submit("pc", rng.random(2), now=float(i))
        assert svc.queue_depth == 10
        server = TraversalServer(svc, port=0)
        server.start()
        server.shutdown(drain=True)
        assert svc.queue_depth == 0
        st = svc.stats()
        assert st.queries_completed + st.queries_failed == 10

    def test_shutdown_idempotent(self):
        server = TraversalServer(_service(), port=0)
        server.start()
        server.shutdown()
        server.shutdown()  # second call is a no-op

    def test_run_serve_duration_exits_cleanly(self):
        svc = _service()
        server = TraversalServer(svc, port=0)
        server.driver = SyntheticLoadDriver(
            svc, server.lock, seed=5, queries_per_tick=4, interval_s=0.01
        )
        messages = []
        rc = run_serve(
            server, duration_s=0.3, announce=messages.append
        )
        assert rc == 0
        assert server.driver.ticks > 0
        assert any("serving on http://" in m for m in messages)
        assert svc.queue_depth == 0
