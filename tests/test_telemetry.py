"""Telemetry layer tests: metrics registry (Prometheus text + JSON
export), logical-clock span tracing with Chrome trace_event export,
flight-recorder rings and failure dumps, the zero-cost-when-off
contract of the NULL_TELEMETRY singleton, service-level span coverage
(submit -> batch -> dispatch -> launch -> steps), and the service CLI's
``--trace-out`` / ``--metrics-out`` / ``--flight-out`` exporters."""

import json
import math

import numpy as np
import pytest

from repro.points.datasets import dataset_by_name
from repro.service import ServiceConfig, TraversalService
from repro.telemetry import (
    DEFAULT_MS_BUCKETS,
    NULL_TELEMETRY,
    FlightRecorder,
    MetricsRegistry,
    Telemetry,
    TelemetryConfig,
    Tracer,
)


@pytest.fixture(scope="module")
def geocity512():
    return dataset_by_name("geocity", 512, seed=3).points


def jittered(data, n, seed, scale=0.01):
    rng = np.random.default_rng(seed)
    q = data[rng.permutation(len(data))][:n]
    return q + rng.normal(scale=scale, size=q.shape)


class TestCounter:
    def test_inc_and_labels(self):
        reg = MetricsRegistry()
        c = reg.counter("requests_total", "requests", labels=("backend",))
        c.inc(backend="cpu")
        c.inc(2, backend="lockstep")
        assert c.value(backend="cpu") == 1
        assert c.value(backend="lockstep") == 2
        assert c.value(backend="autoropes") == 0
        assert c.total() == 3

    def test_rejects_negative_and_nonfinite(self):
        c = MetricsRegistry().counter("c_total")
        with pytest.raises(ValueError):
            c.inc(-1)
        with pytest.raises(ValueError):
            c.inc(float("nan"))

    def test_label_names_enforced(self):
        c = MetricsRegistry().counter("c_total", labels=("a",))
        with pytest.raises(ValueError):
            c.inc()  # missing label
        with pytest.raises(ValueError):
            c.inc(a="x", b="y")  # extra label


class TestGauge:
    def test_set_inc_dec(self):
        g = MetricsRegistry().gauge("depth", "queue depth", labels=("q",))
        g.set(5, q="pc")
        g.inc(2, q="pc")
        g.dec(q="pc")
        assert g.value(q="pc") == 6
        with pytest.raises(ValueError):
            g.set(float("inf"), q="pc")


class TestHistogram:
    def test_bucket_counts_and_overflow(self):
        h = MetricsRegistry().histogram("lat_ms", buckets=(1.0, 10.0))
        for v in (0.5, 0.9, 5.0, 50.0):
            h.observe(v)
        st = h.state()
        assert st.counts == [2, 1, 1]  # <=1, <=10, overflow
        assert st.count == 4
        assert st.sum == pytest.approx(56.4)

    def test_bounds_must_be_finite_ascending(self):
        reg = MetricsRegistry()
        with pytest.raises(ValueError):
            reg.histogram("a", buckets=(1.0, 1.0))
        with pytest.raises(ValueError):
            reg.histogram("b", buckets=(1.0, float("inf")))
        with pytest.raises(ValueError):
            reg.histogram("c", buckets=())

    def test_prometheus_exposition_is_cumulative(self):
        reg = MetricsRegistry()
        h = reg.histogram("lat_ms", "latency", buckets=(1.0, 10.0))
        h.observe(0.5)
        h.observe(5.0)
        h.observe(50.0)
        text = reg.expose_text()
        assert '# TYPE lat_ms histogram' in text
        assert 'lat_ms_bucket{le="1"} 1' in text
        assert 'lat_ms_bucket{le="10"} 2' in text
        assert 'lat_ms_bucket{le="+Inf"} 3' in text
        assert "lat_ms_count 3" in text
        # +Inf lives only in the exposition; the data model stays finite.
        assert all(math.isfinite(b) for b in h.bounds)

    def test_default_buckets_finite(self):
        assert all(math.isfinite(b) for b in DEFAULT_MS_BUCKETS)
        assert list(DEFAULT_MS_BUCKETS) == sorted(DEFAULT_MS_BUCKETS)


class TestRegistry:
    def test_register_once_by_name(self):
        reg = MetricsRegistry()
        a = reg.counter("x_total", "first", labels=("l",))
        b = reg.counter("x_total", "ignored", labels=("l",))
        assert a is b
        with pytest.raises(ValueError):
            reg.gauge("x_total")  # same name, different kind

    def test_to_dict_json_round_trips(self):
        reg = MetricsRegistry()
        reg.counter("q_total", "queries", labels=("s",)).inc(s="pc")
        reg.histogram("ms", buckets=(1.0,)).observe(0.5)
        d = reg.to_dict()
        blob = json.dumps(d, allow_nan=False)
        assert json.loads(blob) == d
        assert d["q_total"]["kind"] == "counter"
        assert d["ms"]["series"][0]["counts"] == [1, 0]


class TestExpositionEscaping:
    """Regression coverage for the text exposition format's escaping
    rules: backslash, double-quote, and newline in label values, and
    backslash/newline in HELP text."""

    def test_label_value_escapes(self):
        from repro.telemetry.metrics import escape_label_value

        assert escape_label_value('a\\b') == 'a\\\\b'
        assert escape_label_value('say "hi"') == 'say \\"hi\\"'
        assert escape_label_value('two\nlines') == 'two\\nlines'
        # Backslash escapes first — a literal \n sequence must not be
        # double-mangled into \\\\n-then-\n.
        assert escape_label_value('\\n') == '\\\\n'
        assert escape_label_value('plain') == 'plain'

    def test_help_text_escapes(self):
        from repro.telemetry.metrics import escape_help_text

        assert escape_help_text('path\\to\nthing') == 'path\\\\to\\nthing'
        # Double quotes are legal verbatim in HELP text.
        assert escape_help_text('a "quoted" word') == 'a "quoted" word'

    def test_exposed_text_stays_single_line_per_sample(self):
        reg = MetricsRegistry()
        c = reg.counter(
            'weird_total', 'help with \\ and\nnewline', labels=('tag',)
        )
        c.inc(tag='q"uo\\te\nnl')
        text = reg.expose_text()
        lines = [ln for ln in text.splitlines() if ln]
        # Escaping must keep every sample and comment on one line
        # (HELP, TYPE, one sample, the # EOF terminator).
        assert len(lines) == 4
        # OpenMetrics: counter metadata names drop the _total suffix.
        assert lines[0] == '# HELP weird help with \\\\ and\\nnewline'
        assert lines[2] == 'weird_total{tag="q\\"uo\\\\te\\nnl"} 1'
        assert lines[3] == '# EOF'

    def test_escaped_text_round_trips(self):
        """Un-escaping the exposed label value recovers the original —
        i.e. the escape is lossless, not just syntactically valid."""
        from repro.telemetry.metrics import escape_label_value

        original = 'a\\b "c"\nd\\n'
        escaped = escape_label_value(original)
        assert '\n' not in escaped
        unescaped = (
            escaped.replace('\\\\', '\x00')
            .replace('\\"', '"')
            .replace('\\n', '\n')
            .replace('\x00', '\\')
        )
        assert unescaped == original


class TestTracer:
    def test_span_lifecycle_and_events(self):
        tr = Tracer()
        span = tr.begin("query:pc", "query", "q1", 0.0, session="pc")
        span.event("enqueued", 0.5, depth=3)
        assert tr.get_open("q1") is span and span.open
        tr.end("q1", 4.0, "ok", latency_ms=4.0)
        assert not span.open and span.duration_ms() == 4.0
        assert span.args["latency_ms"] == 4.0

    def test_chrome_trace_structure(self):
        tr = Tracer()
        tr.begin("query:pc", "query", "q1", 1.0)
        tr.end("q1", 3.0)
        tr.instant("retry", "batch", 2.0, attempt=1)
        tr.begin("batch:pc", "batch", "b1", 1.5)  # left open
        doc = tr.chrome_trace(close_open_at=9.0)
        evs = doc["traceEvents"]
        phases = [e["ph"] for e in evs]
        assert phases.count("M") >= 4  # process_name rows
        b = next(e for e in evs if e["ph"] == "b" and e["id"] == "q1")
        e = next(e for e in evs if e["ph"] == "e" and e["id"] == "q1")
        assert b["ts"] == 1000.0 and e["ts"] == 3000.0  # µs
        assert b["pid"] != 0 and b["cat"] == "query"
        i = next(e for e in evs if e["ph"] == "i")
        assert i["name"] == "retry" and i["args"]["attempt"] == 1
        # Open span closed in the export only.
        be = next(e for e in evs if e["ph"] == "e" and e["id"] == "b1")
        assert be["ts"] == 9000.0
        assert tr.get_open("b1").open
        json.dumps(doc, allow_nan=False)  # must be valid strict JSON

    def test_max_spans_drops_and_counts(self):
        tr = Tracer(max_spans=2)
        tr.complete("a", "query", "s1", 0.0, 1.0)
        tr.complete("b", "query", "s2", 0.0, 1.0)
        tr.complete("c", "query", "s3", 0.0, 1.0)
        tr.instant("d", "service", 0.0)
        assert len(tr) == 2 and tr.dropped == 2


class TestFlightRecorder:
    def span(self, i, status="ok"):
        return {
            "name": f"s{i}", "track": "query", "span_id": f"q{i}",
            "t_start_ms": float(i), "t_end_ms": float(i) + 1.0,
            "status": status, "args": {}, "events": [],
        }

    def test_ring_is_bounded(self):
        fr = FlightRecorder(capacity=4)
        for i in range(10):
            fr.record("pc", self.span(i))
        ring = fr.ring("pc")
        assert len(ring) == 4 and ring[0]["name"] == "s6"

    def test_dump_freezes_timeline(self):
        fr = FlightRecorder(capacity=4)
        fr.record("pc", self.span(0))
        dump = fr.dump("pc", "backend_unavailable", 5.0, {"batch": 3})
        fr.record("pc", self.span(1))  # must not leak into the dump
        assert len(dump["timeline"]) == 1
        assert dump["reason"] == "backend_unavailable"
        assert fr.dumps[0] is dump

    def test_dump_budget(self):
        fr = FlightRecorder(capacity=2, max_dumps=1)
        fr.record("pc", self.span(0))
        assert fr.dump("pc", "a", 0.0) is not None
        assert fr.dump("pc", "b", 1.0) is None
        assert len(fr.dumps) == 1 and fr.dumps_dropped == 1

    def test_format_dump_elides_long_timelines(self):
        fr = FlightRecorder(capacity=40)
        for i in range(30):
            fr.record("pc", self.span(i))
        text = fr.format_dump(fr.dump("pc", "chaos:latency_spike", 99.0),
                              max_spans=5)
        assert "(25 earlier spans)" in text
        assert "s29" in text and "s3\n" not in text


class TestFacade:
    def test_disabled_is_the_null_singleton(self):
        assert Telemetry.from_config(TelemetryConfig()) is NULL_TELEMETRY
        assert NULL_TELEMETRY.enabled is False
        assert NULL_TELEMETRY.registry is None
        assert NULL_TELEMETRY.tracer is None
        assert NULL_TELEMETRY.flight is None
        snap = NULL_TELEMETRY.snapshot()
        assert snap.enabled is False and snap.metrics == {}

    def test_enabled_facade_wires_subsystems(self):
        tel = Telemetry.on(step_events=4)
        assert tel.enabled
        assert tel.registry is not None
        assert tel.tracer is not None
        assert tel.flight is not None
        span = tel.tracer.begin("q", "query", "q1", 0.0)
        tel.finish_span("pc", span, 2.0, "ok")
        assert tel.flight.ring("pc")[0]["t_end_ms"] == 2.0
        snap = tel.snapshot()
        assert snap.enabled and snap.spans_recorded == 1

    def test_config_validation(self):
        with pytest.raises(ValueError):
            TelemetryConfig(step_events=-1)
        with pytest.raises(ValueError):
            TelemetryConfig(flight_capacity=0)


class TestServiceTelemetry:
    """Span coverage and metric wiring on a live service."""

    def _service(self, data, **cfg_kw):
        cfg = ServiceConfig(
            max_batch=16, max_wait_ms=2.0,
            telemetry=TelemetryConfig(enabled=True, step_events=8),
            **cfg_kw,
        )
        svc = TraversalService(cfg)
        svc.register("pc", app="pc", data=data, radius=0.1, leaf_size=4)
        return svc

    def test_disabled_service_is_structurally_off(self, geocity512):
        svc = TraversalService(ServiceConfig())
        svc.register("pc", app="pc", data=geocity512, radius=0.1, leaf_size=4)
        assert svc.telemetry is NULL_TELEMETRY
        assert svc._m is None
        svc.query_many("pc", jittered(geocity512, 20, seed=1))
        assert svc.stats().telemetry.enabled is False

    def test_spans_cover_query_batch_launch(self, geocity512):
        svc = self._service(geocity512)
        n = 40
        svc.query_many("pc", jittered(geocity512, n, seed=2))
        tr = svc.telemetry.tracer
        queries = [s for s in tr.spans("query")
                   if not s.span_id.startswith("instant:")]
        batches = tr.spans("batch")
        launches = tr.spans("launch")
        assert len(queries) == n
        assert all(not s.open and s.status in ("ok", "memo") for s in queries)
        real_batches = [s for s in batches
                        if not s.span_id.startswith("instant:")]
        assert real_batches and all(not s.open for s in real_batches)
        # Every batch span carries the dispatch decision...
        for b in real_batches:
            names = [e["name"] for e in b.events]
            assert "dispatch" in names
        # ...and every GPU launch span samples StepTrace dynamics.
        gpu = [s for s in launches if s.args.get("backend") != "cpu"]
        assert gpu, "no GPU launches in a 40-query morton-sorted run"
        for s in gpu:
            steps = [e for e in s.events if e["name"] == "step"]
            assert 0 < len(steps) <= 8
            ts = [e["t_ms"] for e in steps]
            assert ts == sorted(ts)
            assert s.t_start <= ts[0] and ts[-1] <= s.t_end
            assert s.args.get("engine") == "compiled"

    def test_metrics_agree_with_stats(self, geocity512):
        svc = self._service(geocity512)
        svc.query_many("pc", jittered(geocity512, 40, seed=3))
        s = svc.stats()
        m = s.telemetry.metrics
        q = sum(x["value"] for x in m["service_queries_total"]["series"])
        assert q == s.queries_submitted
        ok = sum(
            x["value"] for x in m["service_query_results_total"]["series"]
            if x["labels"]["outcome"] == "ok"
        )
        assert ok == s.queries_completed
        batches = sum(x["value"] for x in m["service_batches_total"]["series"])
        assert batches == s.batches
        # Plan-op gauges published at registration.
        assert "plan_ops" in m and m["plan_ops"]["series"]

    def test_chrome_export_of_live_service(self, geocity512):
        svc = self._service(geocity512)
        svc.query_many("pc", jittered(geocity512, 20, seed=4))
        doc = svc.telemetry.tracer.chrome_trace(close_open_at=svc.now_ms)
        blob = json.dumps(doc, allow_nan=False)
        evs = json.loads(blob)["traceEvents"]
        ids = {e.get("id") for e in evs if e["ph"] == "b"}
        ends = {e.get("id") for e in evs if e["ph"] == "e"}
        assert ids and ids <= ends


class TestCLITelemetryOutputs:
    def test_demo_writes_all_three_exports(self, tmp_path, capsys):
        from repro.service.__main__ import main

        trace = tmp_path / "demo.trace.json"
        metrics_json = tmp_path / "metrics.json"
        flight = tmp_path / "flight.json"
        rc = main([
            "--queries", "64", "--data", "256", "--max-batch", "16",
            "--trace-out", str(trace),
            "--metrics-out", str(metrics_json),
            "--flight-out", str(flight),
        ])
        assert rc == 0
        doc = json.loads(trace.read_text())
        assert doc["traceEvents"], "empty chrome trace"
        names = {e["name"] for e in doc["traceEvents"]}
        assert "query" in names
        assert any(n.startswith("batch:") for n in names)
        assert any(n.startswith("launch:") for n in names)
        m = json.loads(metrics_json.read_text())
        assert "service_queries_total" in m
        f = json.loads(flight.read_text())
        assert "dumps" in f and "rings" in f

    def test_metrics_out_prometheus_text(self, tmp_path, capsys):
        from repro.service.__main__ import main

        prom = tmp_path / "metrics.prom"
        rc = main([
            "--queries", "32", "--data", "256", "--max-batch", "16",
            "--metrics-out", str(prom),
        ])
        assert rc == 0
        text = prom.read_text()
        assert "# TYPE service_queries counter" in text
        assert "service_exec_ms_bucket" in text

    def test_chaos_run_dumps_flight_timelines(self, tmp_path, capsys):
        from repro.service.__main__ import main

        flight = tmp_path / "flight.json"
        rc = main([
            "--chaos", "--chaos-seed", "1337", "--queries", "256",
            "--data", "1024", "--max-batch", "32",
            "--flight-out", str(flight),
        ])
        assert rc == 0
        f = json.loads(flight.read_text())
        injected = [d for d in f["dumps"]
                    if d["reason"].startswith("chaos:")]
        assert injected, "chaos run produced no per-fault flight dumps"
        for d in injected:
            assert d["timeline"], "flight dump with empty timeline"
