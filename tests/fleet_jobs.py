"""Dotted-path job targets for the ProcessPool tests.

Pool jobs are named ``"pkg.mod:func"`` and imported in the child, so
the test targets must live in a real module — lambdas and closures
cannot cross the process boundary.
"""


def square(x: int) -> int:
    return x * x


def boom(message: str = "kaboom") -> None:
    raise RuntimeError(message)


def suicide() -> None:
    """Die without a Python traceback: SIGKILL cannot be caught, so the
    parent sees a bare EOF on the pipe — the hardest crash to surface."""
    import os
    import signal

    os.kill(os.getpid(), signal.SIGKILL)
