"""Property-based tests for the coalescing model: transactions must
equal a brute-force count of distinct touched segments."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.gpusim.device import small_test_device
from repro.gpusim.memory import DeviceAllocator, GlobalMemory
from repro.gpusim.stats import KernelStats


def brute_force_transactions(addresses, nbytes, active, seg):
    total = 0
    for warp_addr, warp_act in zip(addresses, active):
        segs = set()
        for a, on in zip(warp_addr, warp_act):
            if not on:
                continue
            segs.add(a // seg)
            segs.add((a + nbytes - 1) // seg)
        total += len(segs)
    return total


@given(
    addresses=hnp.arrays(
        dtype=np.int64,
        shape=st.tuples(st.integers(1, 6), st.integers(1, 8)),
        elements=st.integers(0, 5000),
    ),
    nbytes=st.integers(1, 200),
    data=st.data(),
)
@settings(max_examples=80, deadline=None)
def test_transactions_match_brute_force(addresses, nbytes, data):
    device = small_test_device(warp_size=4)
    active = data.draw(
        hnp.arrays(dtype=bool, shape=addresses.shape), label="active"
    )
    alloc = DeviceAllocator(device)
    alloc.alloc("span", 1, 6000)
    stats = KernelStats()
    mem = GlobalMemory(device, alloc, stats, l2_enabled=False)
    got = mem.warp_access(addresses, nbytes, active, step=1)
    want = brute_force_transactions(
        addresses, nbytes, active, device.segment_bytes
    )
    assert got == want
    assert stats.global_transactions == want
    assert stats.dram_bytes == want * device.segment_bytes


@given(
    idx=hnp.arrays(
        dtype=np.int64,
        shape=st.tuples(st.integers(1, 4), st.integers(1, 8)),
        elements=st.integers(0, 500),
    ),
)
@settings(max_examples=40, deadline=None)
def test_l2_never_creates_transactions(idx):
    """Enabling the L2 changes hit/miss splits, never the transaction
    count (hardware: the request still happens)."""
    device = small_test_device(warp_size=4)

    def run(l2):
        alloc = DeviceAllocator(device)
        region = alloc.alloc("a", 8, 1000)
        stats = KernelStats()
        mem = GlobalMemory(device, alloc, stats, l2_enabled=l2)
        for step in (1, 2, 3):
            mem.warp_access(region.addresses(idx), 8, None, step)
        return stats

    on, off = run(True), run(False)
    assert on.global_transactions == off.global_transactions
    assert on.l2_hit_transactions >= off.l2_hit_transactions == 0
    assert on.dram_bytes <= off.dram_bytes
